package hybridnet

// Streaming delivery of in-progress sweep results (DESIGN.md §12):
// every sweep owns a broadcaster that records each resolved cell's
// rendered rows (in canonical-index order per cell, resolution order
// across cells) and fans them out to any number of subscribers. A
// subscriber attaching mid-run first replays the already-resolved
// cells, then follows live — each cell delivered exactly once, because
// the replay snapshot and the live registration happen under one lock.
// Subscribers are buffered and never block the sweep: one that falls a
// full buffer behind is disconnected with a terminal "dropped" event.
//
// Determinism contract: a cell's streamed rows are rendered through
// the scenario's RenderRow hook and runner.EncodeJSONL — the same
// sink the static ?format=jsonl document goes through — so the
// streamed rows, re-ordered by canonical cell index, are byte-
// identical to the finished document. The chunked-JSONL framing
// enforces that order on the wire (holding back out-of-order cells),
// making the streamed body itself byte-identical; the SSE framing
// delivers cells in resolution order and carries the canonical index
// in the event id for client-side reassembly.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/sse"
)

// DefaultStreamBuffer is each stream subscriber's buffered-cell
// capacity when ServerConfig.StreamBuffer is unset. A subscriber that
// falls this many cells behind the sweep is disconnected rather than
// allowed to block or buffer unboundedly.
const DefaultStreamBuffer = 256

// streamStatusInterval paces the SSE keep-alive status events.
const streamStatusInterval = time.Second

// ErrStreamLagged reports that a stream subscriber was disconnected
// because it fell a full buffer behind the sweep (DESIGN.md §12). The
// subscriber saw a terminal "dropped" event first.
var ErrStreamLagged = errors.New("hybridnet: stream subscriber lagged behind sweep")

// Stream event kinds (StreamEvent.Kind, and the SSE event names).
const (
	// StreamCell carries one resolved cell's rendered rows.
	StreamCell = "cell"
	// StreamStatus is a periodic progress report (SSE framing only).
	StreamStatus = "status"
	// StreamDone terminates a stream whose sweep finished.
	StreamDone = "done"
	// StreamFailed terminates a stream whose sweep failed.
	StreamFailed = "failed"
	// StreamDropped terminates a stream that fell too far behind.
	StreamDropped = "dropped"
)

// StreamEvent is one event delivered to a streaming subscriber, in
// order: zero or more StreamCell (interleaved with StreamStatus when a
// status cadence is configured), then exactly one terminal StreamDone,
// StreamFailed, or StreamDropped event.
type StreamEvent struct {
	// Kind is one of the Stream* constants.
	Kind string
	// Index is the cell's canonical index within the sweep's grid
	// expansion and Total the grid size (StreamCell only).
	Index int
	Total int
	// Cached reports that the cell was served from the result cache.
	Cached bool
	// Rows is the number of rows the cell contributed (possibly zero).
	Rows int
	// JSONL holds the cell's rows exactly as the static ?format=jsonl
	// document renders them — newline-terminated JSON objects, nil when
	// the cell contributed no rows (StreamCell only).
	JSONL []byte
	// Status is the sweep's progress snapshot (all kinds but StreamCell).
	Status SweepStatus
}

// cellChunk is the broadcaster's record of one resolved cell.
type cellChunk struct {
	index  int
	total  int
	cached bool
	rows   int
	jsonl  []byte
}

// streamSub is one subscriber's buffered channel. dropped is guarded
// by the owning broadcaster's mutex.
type streamSub struct {
	ch      chan cellChunk
	dropped bool
}

// broadcaster fans one sweep's resolved cells out to its subscribers
// and retains every chunk for late-subscriber replay. The chunk log is
// bounded by the sweep's own grid size, which the admission layer
// already bounds.
type broadcaster struct {
	buffer int

	mu       sync.Mutex
	chunks   []cellChunk
	subs     map[*streamSub]struct{}
	terminal string // "" while running, else SweepDone / SweepFailed
}

func newBroadcaster(buffer int) *broadcaster {
	if buffer <= 0 {
		buffer = DefaultStreamBuffer
	}
	return &broadcaster{buffer: buffer, subs: make(map[*streamSub]struct{})}
}

// publish appends one resolved cell to the replay log and fans it out.
// The send never blocks the sweep: a subscriber whose buffer is full
// is marked dropped and disconnected on the spot (its channel close is
// the signal; buffered chunks stay readable).
func (b *broadcaster) publish(c cellChunk) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.chunks = append(b.chunks, c)
	for sub := range b.subs {
		select {
		case sub.ch <- c:
		default:
			sub.dropped = true
			delete(b.subs, sub)
			close(sub.ch)
		}
	}
}

// finish records the sweep's terminal state and closes every live
// subscriber. Called exactly once, after the sweep's state flipped, so
// a woken subscriber reading sweep.status() sees the final state.
func (b *broadcaster) finish(state string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.terminal = state
	for sub := range b.subs {
		delete(b.subs, sub)
		close(sub.ch)
	}
}

// subscribe snapshots the already-resolved cells and, if the sweep is
// still running, registers a live channel — atomically, under one
// lock, which is what makes delivery exactly-once: every cell is
// either in the snapshot or published to the channel, never both or
// neither. For a finished sweep it returns the full replay and the
// terminal state with a nil sub.
func (b *broadcaster) subscribe() (replay []cellChunk, sub *streamSub, terminal string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	replay = b.chunks[:len(b.chunks):len(b.chunks)]
	if b.terminal != "" {
		return replay, nil, b.terminal
	}
	sub = &streamSub{ch: make(chan cellChunk, b.buffer)}
	b.subs[sub] = struct{}{}
	return replay, sub, ""
}

// unsubscribe detaches a live subscriber; safe to call after the
// broadcaster already closed it (membership-checked).
func (b *broadcaster) unsubscribe(sub *streamSub) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[sub]; ok {
		delete(b.subs, sub)
		close(sub.ch)
	}
}

func (b *broadcaster) wasDropped(sub *streamSub) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return sub.dropped
}

func (b *broadcaster) terminalState() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.terminal
}

// chunkFromEvent renders one observer event into its broadcast form.
func chunkFromEvent(ev runner.CellEvent) cellChunk {
	return cellChunk{
		index:  ev.Cell.Index,
		total:  ev.Total,
		cached: ev.Cached,
		rows:   ev.Rows,
		jsonl:  runner.EncodeJSONL(ev.Rendered),
	}
}

// streamSource returns the sweep's broadcaster. A sweep rehydrated
// from its persisted record has none (there is no live run to
// observe), so one is built on demand: the generator re-runs through
// the result cache with a chunk-collecting observer — cells resolve as
// cache hits, byte-identical to the original run (DESIGN.md §7) — and
// the chunks, sorted into canonical order, become an already-finished
// broadcaster. Two racing callers may both regenerate; the first to
// publish wins and the duplicate is discarded.
func (s *Server) streamSource(sw *sweep) (*broadcaster, error) {
	sw.mu.Lock()
	b := sw.bcast
	sw.mu.Unlock()
	if b != nil {
		return b, nil
	}
	req := sw.req
	fams, err := s.normalize(&req)
	if err != nil {
		return nil, fmt.Errorf("hybridnet: rehydrating sweep %s: %w", sw.id, err)
	}
	var cmu sync.Mutex
	var chunks []cellChunk
	cfg := experiments.ReportConfig{N: req.N, Seed: req.Seed, Families: fams}
	r := s.newRunner(func(ev runner.CellEvent) {
		if ev.Err != nil {
			return
		}
		c := chunkFromEvent(ev)
		cmu.Lock()
		chunks = append(chunks, c)
		cmu.Unlock()
	})
	tables, err := experiments.Generate(req.Scenario, cfg, r)
	if err != nil {
		return nil, fmt.Errorf("hybridnet: rehydrating sweep %s: %w", sw.id, err)
	}
	sort.Slice(chunks, func(i, j int) bool { return chunks[i].index < chunks[j].index })
	nb := newBroadcaster(s.streamBuffer)
	nb.chunks = chunks
	nb.terminal = SweepDone
	sw.mu.Lock()
	if sw.bcast == nil {
		sw.bcast = nb
		if sw.tables == nil {
			sw.tables = tables // regenerated anyway; save handleResults the work
		}
	}
	b = sw.bcast
	sw.mu.Unlock()
	return b, nil
}

// terminalEvent maps a broadcaster terminal state to its stream event.
func terminalEvent(state string, st SweepStatus) StreamEvent {
	kind := StreamDone
	if state == SweepFailed {
		kind = StreamFailed
	}
	return StreamEvent{Kind: kind, Status: st}
}

// StreamCells streams a sweep's resolved cells to fn as they land:
// already-resolved cells replay first (a finished or rehydrated sweep
// replays entirely from its record), then live cells follow, and the
// stream ends with exactly one terminal event — StreamDone,
// StreamFailed, or StreamDropped. Cells arrive in resolution order;
// re-ordering the JSONL payloads by Index reproduces the static
// ?format=jsonl document byte for byte. fn runs on the subscriber's
// goroutine and its error aborts the stream. When statusEvery in the
// HTTP layer is wanted in-process, wrap fn; StreamCells itself emits
// no StreamStatus events. Returns ErrStreamLagged after a dropped
// event, ctx.Err() on cancellation, fn's error if it aborted, and nil
// after StreamDone/StreamFailed.
func (s *Server) StreamCells(ctx context.Context, id string, fn func(StreamEvent) error) error {
	sw, ok := s.lookup(id)
	if !ok {
		return ErrUnknownSweep
	}
	if _, err := s.streamSource(sw); err != nil {
		return err
	}
	return s.streamLoop(ctx, sw, 0, fn)
}

// streamLoop is the shared subscriber loop behind StreamCells and the
// HTTP stream framings: replay, then live delivery with an optional
// status cadence, then the terminal event. The subscription is bound
// to ctx — a cancelled context (client disconnect) detaches promptly.
func (s *Server) streamLoop(ctx context.Context, sw *sweep, statusEvery time.Duration, fn func(StreamEvent) error) error {
	b, err := s.streamSource(sw)
	if err != nil {
		return err
	}
	replay, sub, terminal := b.subscribe()
	s.streamSubs.Add(1)
	defer s.streamSubs.Add(-1)
	if sub != nil {
		defer b.unsubscribe(sub)
	}
	emit := func(c cellChunk) error {
		s.m.streamEvents.Inc()
		return fn(StreamEvent{Kind: StreamCell, Index: c.index, Total: c.total, Cached: c.cached, Rows: c.rows, JSONL: c.jsonl})
	}
	for _, c := range replay {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := emit(c); err != nil {
			return err
		}
	}
	if sub == nil {
		return fn(terminalEvent(terminal, sw.status()))
	}
	var tick <-chan time.Time
	if statusEvery > 0 {
		t := time.NewTicker(statusEvery)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case c, ok := <-sub.ch:
			if !ok {
				// Closed by the broadcaster: either the sweep finished
				// or this subscriber overflowed its buffer. Buffered
				// chunks were drained before ok turned false.
				if b.wasDropped(sub) {
					s.m.streamDropped.Inc()
					fn(StreamEvent{Kind: StreamDropped, Status: sw.status()})
					return ErrStreamLagged
				}
				return fn(terminalEvent(b.terminalState(), sw.status()))
			}
			if err := emit(c); err != nil {
				return err
			}
		case <-tick:
			if err := fn(StreamEvent{Kind: StreamStatus, Status: sw.status()}); err != nil {
				return err
			}
		}
	}
}

// handleStream is GET /v1/sweeps/{id}/stream: live delivery of cell
// rows as they resolve, in one of two framings. ?format=sse (the
// default, also chosen by Accept: text/event-stream) frames each cell
// as an SSE "cell" event — id: the canonical cell index, data: the
// cell's JSONL rows — interleaved with periodic "status" events and
// terminated by a single "done", "failed", or "dropped" event.
// ?format=jsonl (also chosen by Accept: application/jsonl) streams the
// rows themselves, flushed per resolved cell and held back into
// canonical order, so the complete body is byte-identical to the
// static ?format=jsonl results document; a failure or drop after the
// first byte aborts the connection mid-body, making the truncation
// evident. Errors detected before the first byte (unknown sweep,
// rehydration failure, early sweep failure) are ordinary JSON errors.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	format := r.URL.Query().Get("format")
	if format == "" {
		accept := r.Header.Get("Accept")
		if strings.Contains(accept, "application/jsonl") && !strings.Contains(accept, "text/event-stream") {
			format = "jsonl"
		} else {
			format = "sse"
		}
	}
	if format != "sse" && format != "jsonl" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown stream format %q (want sse, jsonl)", format))
		return
	}
	sw, ok := s.lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, ErrUnknownSweep)
		return
	}
	// Build the source before the first byte, so a rehydration failure
	// still answers with a proper JSON status.
	if _, err := s.streamSource(sw); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if format == "sse" {
		s.streamSSE(w, r, sw)
	} else {
		s.streamJSONL(w, r, sw)
	}
}

// streamSSE frames the stream as text/event-stream, flushed per event.
// The flush path runs through http.NewResponseController, which
// unwraps the instrumentation's statusRecorder to reach the server's
// Flusher (the bug the recorder's Unwrap method exists to fix).
func (s *Server) streamSSE(w http.ResponseWriter, r *http.Request, sw *sweep) {
	rc := http.NewResponseController(w)
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	// The frame rendering is shared with the consumer side through
	// internal/sse, so hybridload's parser and this writer cannot
	// drift apart.
	writeEvent := func(event string, id int, data []byte) error {
		ev := sse.Event{Name: event, ID: id}
		if len(data) > 0 {
			for _, line := range bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n")) {
				ev.Data = append(ev.Data, string(line))
			}
		}
		if _, err := w.Write(ev.Frame()); err != nil {
			return err
		}
		return rc.Flush()
	}
	// Errors here are client disconnects, write failures, or the lag
	// disconnect — all already delivered in-band (the terminal event)
	// or undeliverable; the stream just ends.
	_ = s.streamLoop(r.Context(), sw, streamStatusInterval, func(ev StreamEvent) error {
		if ev.Kind == StreamCell {
			return writeEvent(StreamCell, ev.Index, ev.JSONL)
		}
		data, err := json.Marshal(ev.Status)
		if err != nil {
			return err
		}
		return writeEvent(ev.Kind, -1, data)
	})
}

// streamJSONL frames the stream as chunked application/jsonl: cells
// arrive in resolution order but are released in canonical index
// order (out-of-order cells held back), so the body equals the static
// document byte for byte. In-band error signalling would corrupt the
// row stream, so a post-first-byte failure or lag aborts the
// connection (http.ErrAbortHandler) instead of ending it cleanly.
func (s *Server) streamJSONL(w http.ResponseWriter, r *http.Request, sw *sweep) {
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "application/jsonl")
	pending := make(map[int][]byte)
	next := 0
	wrote := false
	var terminal StreamEvent
	err := s.streamLoop(r.Context(), sw, 0, func(ev StreamEvent) error {
		if ev.Kind != StreamCell {
			terminal = ev
			return nil
		}
		pending[ev.Index] = ev.JSONL
		flushed := false
		for {
			data, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if len(data) == 0 {
				continue
			}
			if _, err := w.Write(data); err != nil {
				return err
			}
			wrote = true
			flushed = true
		}
		if flushed {
			return rc.Flush()
		}
		return nil
	})
	switch {
	case errors.Is(err, ErrStreamLagged):
		if !wrote {
			writeError(w, http.StatusServiceUnavailable, ErrStreamLagged)
			return
		}
		panic(http.ErrAbortHandler)
	case err != nil:
		return // client disconnect or write failure; nothing left to say
	case terminal.Kind == StreamFailed:
		if !wrote {
			writeError(w, http.StatusInternalServerError,
				fmt.Errorf("hybridnet: sweep failed: %s", terminal.Status.Error))
			return
		}
		panic(http.ErrAbortHandler)
	case len(pending) > 0:
		// Defensive: the terminal arrived with cells still held back —
		// the document cannot be completed, so don't pretend it was.
		panic(http.ErrAbortHandler)
	}
}
