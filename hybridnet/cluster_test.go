package hybridnet_test

// The differential robustness capstone of cluster mode (DESIGN.md
// §15): a 3-peer in-process cluster must render byte-identical md/csv/
// jsonl to a single node — with no faults, with 10% peer-call loss,
// with 200ms peer latency, and with one peer hard-killed mid-sweep —
// and a sweep computed on peer A must be ≥90% cache-served when
// resubmitted on peer B. No sweep ever fails because a peer is down;
// the degradation shows up in the metrics instead.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/hybridnet"
	"repro/internal/peer"
)

var clusterFormats = []string{"md", "csv", "jsonl"}

// sweepA is the cross-profile workload; sweepB is a disjoint sweep
// (different content addresses) submitted only after the kill, so its
// cells are guaranteed to exercise the degradation path.
var (
	sweepA = hybridnet.SweepRequest{Scenario: "nq", N: 64}
	sweepB = hybridnet.SweepRequest{Scenario: "nq", N: 48}
)

// renderAll runs req to completion on srv and renders every format.
func renderAll(t *testing.T, srv *hybridnet.Server, req hybridnet.SweepRequest) (hybridnet.SweepStatus, map[string]string) {
	t.Helper()
	st, err := srv.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err = srv.Wait(st.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st.State != hybridnet.SweepDone {
		t.Fatalf("sweep %s state = %q (%s); a sweep must never fail due to peer unavailability", st.ID, st.State, st.Error)
	}
	out := make(map[string]string, len(clusterFormats))
	for _, format := range clusterFormats {
		var buf bytes.Buffer
		if err := srv.WriteResults(&buf, st.ID, format); err != nil {
			t.Fatalf("render %s: %v", format, err)
		}
		out[format] = buf.String()
	}
	return st, out
}

// reference renders the single-node ground truth.
func reference(t *testing.T, req hybridnet.SweepRequest) map[string]string {
	t.Helper()
	srv, err := hybridnet.NewServer(hybridnet.ServerConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, out := renderAll(t, srv, req)
	return out
}

// testCluster is a 3-peer in-process cluster: three full hybridnet
// Servers on real sockets, each configured with the same membership.
type testCluster struct {
	addrs []string
	srvs  []*hybridnet.Server
	https []*httptest.Server
	dead  map[int]bool
}

// startCluster boots n peers. Each peer's outbound calls go through a
// FaultTransport with the given profile (distinct seeds, so the peers
// don't fault in lockstep).
func startCluster(t *testing.T, n int, faults peer.Faults) *testCluster {
	t.Helper()
	cl := &testCluster{dead: make(map[int]bool)}
	listeners := make([]net.Listener, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		cl.addrs = append(cl.addrs, l.Addr().String())
	}
	for i, l := range listeners {
		f := faults
		f.Seed = faults.Seed + int64(i)
		srv, err := hybridnet.NewServer(hybridnet.ServerConfig{
			Workers:           2,
			CacheDir:          t.TempDir(),
			Peers:             cl.addrs,
			Self:              cl.addrs[i],
			PeerProbeInterval: 50 * time.Millisecond,
			PeerFetchTimeout:  time.Second,
			PeerHedgeDelay:    25 * time.Millisecond,
			PeerSeed:          int64(i + 1),
			PeerTransport:     &peer.FaultTransport{Faults: f},
		})
		if err != nil {
			t.Fatal(err)
		}
		cl.srvs = append(cl.srvs, srv)
		ts := httptest.NewUnstartedServer(srv.Handler())
		ts.Listener.Close()
		ts.Listener = l
		ts.Start()
		cl.https = append(cl.https, ts)
	}
	t.Cleanup(cl.close)
	return cl
}

// kill hard-kills peer i at the HTTP level: every established
// connection is severed and the listener closed, exactly what the
// survivors observe when a peer process dies.
func (cl *testCluster) kill(i int) {
	if cl.dead[i] {
		return
	}
	cl.dead[i] = true
	cl.https[i].CloseClientConnections()
	cl.https[i].Close()
	cl.srvs[i].Close()
}

func (cl *testCluster) close() {
	for i := range cl.https {
		if !cl.dead[i] {
			cl.https[i].Close()
			cl.srvs[i].Close()
			cl.dead[i] = true
		}
	}
}

// drainReplication waits until every live peer's replication queue is
// empty — after which every computed blob reached its ring owner (or
// was counted as error/dropped).
func (cl *testCluster) drainReplication(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		settled := true
		for i, srv := range cl.srvs {
			if cl.dead[i] {
				continue
			}
			ps := srv.CacheStats().Peers
			if ps == nil {
				t.Fatal("cluster node without peer stats")
			}
			r := ps.Replication
			if r.Pending != 0 || r.Enqueued != r.Sent+r.Errors+r.Dropped {
				settled = false
			}
		}
		if settled {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("replication queues never drained")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestClusterDifferentialRobustness(t *testing.T) {
	refA := reference(t, sweepA)
	refB := reference(t, sweepB)

	profiles := []struct {
		name   string
		faults peer.Faults
		kill   bool
		// assertWarm: the cross-peer resubmission must be ≥90%
		// cache-served. Skipped under loss (a lost fill legitimately
		// recomputes) and kill (the resubmission target changes).
		assertWarm bool
	}{
		{name: "none", assertWarm: true},
		{name: "loss10", faults: peer.Faults{Drop: 0.10, Seed: 1000}},
		{name: "latency200", faults: peer.Faults{Delay: 200 * time.Millisecond, Seed: 2000}, assertWarm: true},
		{name: "killed-mid-sweep", kill: true},
	}
	for _, profile := range profiles {
		profile := profile
		t.Run(profile.name, func(t *testing.T) {
			cl := startCluster(t, 3, profile.faults)

			// Phase 1: cold sweep on peer 0 (under kill, peer 2 dies
			// right after admission — mid-sweep from the survivors'
			// point of view).
			st, err := cl.srvs[0].Submit(sweepA)
			if err != nil {
				t.Fatalf("submit: %v", err)
			}
			if profile.kill {
				cl.kill(2)
			}
			if st, err = cl.srvs[0].Wait(st.ID); err != nil {
				t.Fatalf("wait: %v", err)
			}
			if st.State != hybridnet.SweepDone {
				t.Fatalf("cold sweep state = %q (%s); degradation must never fail a sweep", st.State, st.Error)
			}
			for _, format := range clusterFormats {
				var buf bytes.Buffer
				if err := cl.srvs[0].WriteResults(&buf, st.ID, format); err != nil {
					t.Fatalf("render %s: %v", format, err)
				}
				if buf.String() != refA[format] {
					t.Fatalf("profile %s: %s output differs from single-node reference", profile.name, format)
				}
			}

			if profile.kill {
				// Phase 2 (kill): a fresh sweep on a survivor. Its
				// cells' owners include the dead peer with near
				// certainty, so the fill path must degrade gracefully
				// — byte-identically — and say so in the metrics.
				_, out := renderAll(t, cl.srvs[1], sweepB)
				for _, format := range clusterFormats {
					if out[format] != refB[format] {
						t.Fatalf("post-kill %s output differs from single-node reference", format)
					}
				}
				// The survivors' probes must mark the dead peer down.
				deadAddr := cl.addrs[2]
				deadline := time.Now().Add(10 * time.Second)
				for {
					down := 0
					for _, i := range []int{0, 1} {
						for _, m := range cl.srvs[i].CacheStats().Peers.Members {
							if m.Addr == deadAddr && m.State == "down" {
								down++
							}
						}
					}
					if down == 2 {
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("survivors never marked %s down", deadAddr)
					}
					time.Sleep(20 * time.Millisecond)
				}
				// And the degradation is visible: fills that could not
				// reach the dead owner fell back to local compute.
				var degraded, failed uint64
				for _, i := range []int{0, 1} {
					ps := cl.srvs[i].CacheStats().Peers
					degraded += ps.Degraded
					failed += ps.Fetch["error"] + ps.Fetch["timeout"]
				}
				if degraded == 0 {
					t.Fatalf("no degradation recorded after a peer kill (degraded=%d, fetch errors/timeouts=%d)", degraded, failed)
				}
				var metricsBuf bytes.Buffer
				cl.srvs[1].Metrics().WriteText(&metricsBuf)
				text := metricsBuf.String()
				if !strings.Contains(text, `hybridd_peer_state{peer="`+deadAddr+`"} 0`) {
					t.Errorf("/metrics does not report the dead peer down:\n%s", grepLines(text, "hybridd_peer_"))
				}
				if !strings.Contains(text, "hybridd_peer_degraded_total") {
					t.Errorf("/metrics lacks hybridd_peer_degraded_total")
				}
				return
			}

			// Phase 2 (no kill): once replication settles, the same
			// sweep resubmitted on peer 1 re-renders byte-identically,
			// served from the cluster's caches.
			cl.drainReplication(t)
			st2, out := renderAll(t, cl.srvs[1], sweepA)
			for _, format := range clusterFormats {
				if out[format] != refA[format] {
					t.Fatalf("profile %s: cross-peer resubmission %s output differs", profile.name, format)
				}
			}
			if profile.assertWarm {
				if st2.Cells == 0 || st2.CachedCells*10 < st2.Cells*9 {
					t.Fatalf("cross-peer resubmission served %d/%d cells from cache; want >= 90%%", st2.CachedCells, st2.Cells)
				}
			}
		})
	}
}

// grepLines filters text to the lines containing substr (test
// diagnostics).
func grepLines(text, substr string) string {
	var b strings.Builder
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			b.WriteString(line)
			b.WriteString("\n")
		}
	}
	return b.String()
}

func TestClusterPeerEndpoints(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	self := l.Addr().String()
	srv, err := hybridnet.NewServer(hybridnet.ServerConfig{
		Workers:           1,
		CacheDir:          t.TempDir(),
		Peers:             []string{self, "127.0.0.1:1"},
		Self:              self,
		PeerProbeInterval: time.Hour, // no background probe noise
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(srv.Handler())
	ts.Listener.Close()
	ts.Listener = l
	ts.Start()
	defer func() {
		ts.Close()
		srv.Close()
	}()
	base := "http://" + self

	// Liveness probe: identity + version.
	resp, err := http.Get(base + "/v1/peer/ping")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, self) || !strings.Contains(body, srv.Version()) {
		t.Fatalf("ping = %d %q", resp.StatusCode, body)
	}

	// Replication push, then serve it back with a digest header.
	blob := []byte("cluster blob")
	sum := sha256.Sum256(blob)
	digest := hex.EncodeToString(sum[:])
	key := "v=" + srv.Version() + "/cafe0123"
	put, err := http.NewRequest(http.MethodPut, base+"/v1/peer/artifact/results/"+key, bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	put.Header.Set("X-Artifact-Sha256", digest)
	resp, err = http.DefaultClient.Do(put)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT = %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/v1/peer/artifact/results/" + key)
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || got != string(blob) {
		t.Fatalf("GET = %d %q", resp.StatusCode, got)
	}
	if h := resp.Header.Get("X-Artifact-Sha256"); h != digest {
		t.Fatalf("digest header = %q, want %q", h, digest)
	}

	// A push with a wrong digest is rejected and not stored.
	put2, _ := http.NewRequest(http.MethodPut, base+"/v1/peer/artifact/results/v=x/bad", bytes.NewReader(blob))
	put2.Header.Set("X-Artifact-Sha256", strings.Repeat("0", 64))
	resp, err = http.DefaultClient.Do(put2)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt PUT = %d, want 400", resp.StatusCode)
	}
	resp, _ = http.Get(base + "/v1/peer/artifact/results/v=x/bad")
	readAll(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("corrupt blob was stored: GET = %d", resp.StatusCode)
	}

	// Unknown namespace and unknown key are 404; sweeps records are
	// not served peer-to-peer.
	for _, path := range []string{
		"/v1/peer/artifact/results/absent",
		"/v1/peer/artifact/sweeps/" + key,
		"/v1/peer/artifact/bogus/" + key,
	} {
		resp, err = http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}

	// Wrong method keeps the JSON 405 contract.
	resp, err = http.Post(base+"/v1/peer/artifact/results/"+key, "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "GET, PUT" {
		t.Fatalf("POST = %d, Allow = %q", resp.StatusCode, resp.Header.Get("Allow"))
	}

	// The cluster surfaces on /v1/cache/stats and /metrics.
	ps := srv.CacheStats().Peers
	if ps == nil || ps.Self != self || len(ps.Members) != 2 {
		t.Fatalf("CacheStats().Peers = %+v", ps)
	}
	var buf bytes.Buffer
	srv.Metrics().WriteText(&buf)
	for _, want := range []string{
		`hybridd_peer_state{peer="` + self + `"} 2`,
		"hybridd_peer_fetch_total",
		"hybridd_peer_degraded_total",
		"hybridd_peer_replicate_total",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestClusterConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  hybridnet.ServerConfig
	}{
		{"peers without self", hybridnet.ServerConfig{Peers: []string{"a:1", "b:2"}}},
		{"self not in peers", hybridnet.ServerConfig{Peers: []string{"a:1", "b:2"}, Self: "c:3"}},
		{"self without peers", hybridnet.ServerConfig{Self: "a:1"}},
		{"cluster without cache", hybridnet.ServerConfig{Peers: []string{"a:1"}, Self: "a:1", CacheBytes: -1}},
		{"duplicate peer", hybridnet.ServerConfig{Peers: []string{"a:1", "a:1"}, Self: "a:1"}},
	}
	for _, tc := range cases {
		if srv, err := hybridnet.NewServer(tc.cfg); err == nil {
			srv.Close()
			t.Errorf("%s: NewServer accepted an invalid cluster config", tc.name)
		}
	}
	// Sanity: a well-formed single-member cluster config is accepted.
	srv, err := hybridnet.NewServer(hybridnet.ServerConfig{Peers: []string{"127.0.0.1:1"}, Self: "127.0.0.1:1", PeerProbeInterval: time.Hour})
	if err != nil {
		t.Fatalf("valid cluster config rejected: %v", err)
	}
	srv.Close()
}

func TestClusterHedgeFmt(t *testing.T) {
	// Exercise Owners determinism across processes in spirit: two
	// rings built from the same membership in different order agree on
	// every owner (the cluster-wide ownership argument of DESIGN.md
	// §15 rests on this).
	a := peer.NewRing([]string{"h1:1", "h2:2", "h3:3"}, 0)
	b := peer.NewRing([]string{"h3:3", "h1:1", "h2:2"}, 0)
	for i := 0; i < 256; i++ {
		k := fmt.Sprintf("results\x00v=v/%d", i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("rings disagree on %q", k)
		}
	}
}
