package hybridnet

// The sweep service (DESIGN.md §7, §9, §10, §11): a long-running
// server over the scenario registry of internal/experiments, with a
// shared fair worker pool (runner.Pool) as the batching admission
// layer and a namespaced content-addressed artifact store
// (internal/artifact) underneath — result rows in one namespace,
// frozen CSR topologies in a second, derived ball-profile artifacts in
// a third, finished-sweep records in a fourth — so repeated cells are
// served without re-simulation, every distinct graph instance is built
// exactly once, and a sweep evicted from the bounded in-memory
// registry is rehydrated from its persisted record and re-rendered
// from cache hits, byte-identical to the original run.
//
// Hardening for sustained traffic (DESIGN.md §11): submissions pass
// per-client token-bucket rate limiting and a bounded running-sweep
// count (over-limit requests are shed with HTTP 429 + Retry-After
// instead of queueing unboundedly), every endpoint's latency and
// status codes feed a Prometheus-text /metrics registry alongside
// cache hit ratios, pool depth, and sweep states, and the disk tier
// runs segment compaction with a version-aware retain filter and a
// total-byte bound. In-progress sweeps additionally stream each
// resolved cell's rendered rows to any number of subscribers (SSE or
// chunked JSONL, DESIGN.md §12) with late-subscriber replay and a
// bounded-buffer slow-consumer policy. cmd/hybridd is the stdlib
// net/http binary over Handler; everything here is equally usable
// in-process (NewServer / Submit / WaitContext / WriteResults /
// StreamCells).

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/artifact"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/runner"
)

// graphNamespace is the artifact namespace holding encoded frozen
// topologies (artifact.DefaultNamespace holds the result rows).
const graphNamespace = "graphs"

// profileNamespace is the artifact namespace holding encoded
// ball-profile artifacts derived from the topologies (DESIGN.md §10).
const profileNamespace = "profiles"

// sweepNamespace is the artifact namespace holding finished-sweep
// records, so sweeps evicted from the bounded in-memory registry can
// be rehydrated on later lookups (DESIGN.md §11).
const sweepNamespace = "sweeps"

// DefaultMaxSweeps bounds the in-memory registry of finished sweeps:
// beyond it, the least recently used finished sweep is evicted (and
// served from its persisted record thereafter).
const DefaultMaxSweeps = 256

// ScenarioInfo describes one sweepable artifact of the scenario
// registry, as listed by GET /v1/scenarios.
type ScenarioInfo = experiments.Artifact

// CacheStats is the /v1/cache/stats document: the artifact store's
// cross-namespace totals (flat, backward-compatible fields), the
// per-namespace breakdown, the disk-tier counters, the topology and
// profile caches, and the worker pool's depth.
type CacheStats struct {
	artifact.StoreStats
	// GraphCache counts decoded-topology traffic: builds, shared-
	// instance hits, blob-store restores, singleflight joins.
	GraphCache runner.GraphCacheStats `json:"graph_cache"`
	// ProfileCache counts derived ball-profile traffic: batch-kernel
	// computations, attached-artifact hits, blob-store restores,
	// singleflight joins (DESIGN.md §10).
	ProfileCache runner.ProfileCacheStats `json:"profile_cache"`
	// Pool is the shared worker pool's depth at snapshot time — the
	// signal admission control sheds on (DESIGN.md §11).
	Pool runner.PoolStats `json:"pool"`
	// Peers is the cluster section (DESIGN.md §15); nil outside
	// cluster mode.
	Peers *PeerStats `json:"peers,omitempty"`
}

// Sweep-lifecycle errors.
var (
	// ErrUnknownSweep: no sweep with that id was submitted.
	ErrUnknownSweep = errors.New("hybridnet: unknown sweep")
	// ErrSweepRunning: results were requested before the sweep finished.
	ErrSweepRunning = errors.New("hybridnet: sweep still running")
	// ErrServerClosed: the server no longer admits sweeps.
	ErrServerClosed = errors.New("hybridnet: server closed")
)

// CapacityError is returned by Submit when the bounded running-sweep
// count is exhausted: the request is shed, not queued, and the client
// should retry after the hinted duration (HTTP maps it to 429 +
// Retry-After, DESIGN.md §11).
type CapacityError struct {
	// RetryAfter estimates when capacity will be available, derived
	// from the worker pool's current depth.
	RetryAfter time.Duration
}

func (e *CapacityError) Error() string {
	return fmt.Sprintf("hybridnet: server at sweep capacity; retry after %s", e.RetryAfter)
}

// Sweep states reported by SweepStatus.State.
const (
	SweepRunning = "running"
	SweepDone    = "done"
	SweepFailed  = "failed"
)

// ServerConfig parameterizes a sweep server. The zero value is usable:
// GOMAXPROCS workers, a DefaultMaxBytes in-memory cache, no disk tier,
// no rate limiting, and default sweep bounds.
type ServerConfig struct {
	// Workers sizes the shared worker pool every sweep's cells are
	// scheduled on (≤ 0 means GOMAXPROCS).
	Workers int
	// CacheBytes bounds the in-memory artifact-store tier (result rows
	// and encoded topologies share the budget); 0 means
	// artifact.DefaultMaxBytes, negative disables the store entirely
	// (topologies are then still deduplicated in memory, but nothing
	// is content-addressed or persisted).
	CacheBytes int64
	// CacheDir, when non-empty, adds the persistent disk tier: results
	// and topologies survive restarts and are served from disk after
	// eviction.
	CacheDir string
	// DiskBytes bounds the disk tier's total segment bytes (0 means
	// unbounded); enforced by the segment GC, oldest segments dropped
	// first. Ignored without CacheDir.
	DiskBytes int64
	// Version overrides the code-version component of every content
	// address (default runner.CodeVersion). Two servers sharing a
	// CacheDir must agree on it.
	Version string
	// MaxSweeps bounds the in-memory registry of finished sweeps
	// (0 means DefaultMaxSweeps, negative means unbounded). Evicted
	// sweeps remain addressable through their persisted records when a
	// store is configured.
	MaxSweeps int
	// MaxActive bounds concurrently running sweeps — the admission
	// queue (0 means 4× the pool size, negative means unbounded).
	// Submissions beyond it fail with *CapacityError.
	MaxActive int
	// RatePerSec, when positive, enables per-client token-bucket rate
	// limiting of HTTP sweep submissions at this refill rate.
	RatePerSec float64
	// Burst is the rate limiter's bucket depth (0 means
	// max(1, 2×RatePerSec)).
	Burst int
	// TrustProxy keys the per-client rate limiter on the first
	// X-Forwarded-For hop instead of the socket address. Enable only
	// behind a trusted reverse proxy that sets the header: it is
	// client-forgeable, so trusting it on a directly exposed server
	// lets one client spread its traffic over arbitrary buckets.
	TrustProxy bool
	// StreamBuffer is each stream subscriber's buffered-cell capacity
	// (≤ 0 means DefaultStreamBuffer). A subscriber that falls this
	// many cells behind the sweep is disconnected with a terminal
	// "dropped" event instead of blocking the run (DESIGN.md §12).
	StreamBuffer int

	// Peers, when non-empty, enables cluster mode (DESIGN.md §15): the
	// full static membership of hybridd peers (host:port), including
	// this process. Artifacts are owner-assigned on a consistent-hash
	// ring over the membership; local cache misses fill from the owner
	// and local computes replicate to it. Requires Self and a
	// non-disabled cache.
	Peers []string
	// Self is this process's own advertised host:port; it must appear
	// in Peers. Required iff Peers is set.
	Self string
	// PeerProbeInterval is the liveness probe period (0 means 1s).
	PeerProbeInterval time.Duration
	// PeerFetchTimeout bounds each remote artifact fetch attempt
	// (0 means 2s).
	PeerFetchTimeout time.Duration
	// PeerHedgeDelay is how long the fetcher waits on the primary
	// owner before spending its bounded hedged attempt on the next
	// ring owner (0 means 150ms).
	PeerHedgeDelay time.Duration
	// PeerSeed seeds the deterministic retry jitter (0 derives from
	// Self).
	PeerSeed int64
	// PeerTransport overrides the HTTP transport of all peer calls —
	// the fault-injection seam of the differential cluster tests.
	PeerTransport http.RoundTripper
}

// SweepRequest is a sweep submission: one registered scenario swept
// over a family axis at one instance size and seed. Zero N and Seed
// take the report defaults (n = 576, seed = 1); an empty Families list
// selects the scenario's default axis.
type SweepRequest struct {
	Scenario string   `json:"scenario"`
	Families []string `json:"families,omitempty"`
	N        int      `json:"n,omitempty"`
	Seed     int64    `json:"seed,omitempty"`
	// Fresh forces re-execution when a *finished* sweep with the same
	// content address exists (a still-running one is joined instead of
	// duplicated). Cells still resolve through the result cache, so a
	// fresh resubmission re-renders from cache hits rather than
	// re-simulating.
	Fresh bool `json:"fresh,omitempty"`
}

// SweepStatus is the externally visible state of one sweep.
type SweepStatus struct {
	// ID is the sweep's content address (runner.SweepID): identical
	// requests map to identical ids.
	ID       string `json:"id"`
	Scenario string `json:"scenario"`
	// State is SweepRunning, SweepDone, or SweepFailed.
	State string `json:"state"`
	// Cells counts grid cells resolved so far; CachedCells is the
	// subset served from the result cache without touching the pool.
	Cells       int `json:"cells"`
	CachedCells int `json:"cached_cells"`
	// Reused reports (on Submit only) that a finished or in-flight
	// sweep with the same content address was returned instead of
	// starting a new run.
	Reused bool `json:"reused,omitempty"`
	// Error carries the failure when State is SweepFailed.
	Error string `json:"error,omitempty"`
}

// sweepRecord is the persisted form of a finished sweep (namespace
// "sweeps"), enough to rehydrate status and re-render results through
// the cell cache after the in-memory registry evicted it.
type sweepRecord struct {
	Scenario string   `json:"scenario"`
	Families []string `json:"families,omitempty"`
	N        int      `json:"n"`
	Seed     int64    `json:"seed"`
	Cells    int      `json:"cells"`
	Cached   int      `json:"cached_cells"`
}

// sweep is the server-side state of one submission.
type sweep struct {
	id  string
	req SweepRequest

	mu     sync.Mutex
	state  string
	errMsg string
	tables []*runner.Table
	cells  int
	cached int

	// bcast fans resolved cells out to stream subscribers. Sweeps
	// created by Submit get one up front; rehydrated sweeps build one
	// lazily on the first stream request (see streamSource).
	bcast *broadcaster

	done chan struct{}
	el   *list.Element // position in the finished-sweep LRU, nil while running
}

func (sw *sweep) status() SweepStatus {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return SweepStatus{
		ID:          sw.id,
		Scenario:    sw.req.Scenario,
		State:       sw.state,
		Cells:       sw.cells,
		CachedCells: sw.cached,
		Error:       sw.errMsg,
	}
}

// versionedCache prefixes cell-cache keys with the code version, so
// the disk tier's retain filter can recognize (and age out) rows
// orphaned by a version bump without decoding opaque content hashes.
type versionedCache struct {
	ns     *artifact.Namespace
	prefix string
}

func (c versionedCache) Get(key string) ([]byte, bool) { return c.ns.Get(c.prefix + key) }
func (c versionedCache) Put(key string, value []byte)  { c.ns.Put(c.prefix+key, value) }

// serverMetrics is the registry wiring of the service (DESIGN.md §11).
type serverMetrics struct {
	submitted      *metrics.Counter
	reused         *metrics.Counter
	shedRate       *metrics.Counter
	shedCapacity   *metrics.Counter
	evicted        *metrics.Counter
	rehydrated     *metrics.Counter
	resultsAborted *metrics.Counter
	streamEvents   *metrics.Counter
	streamDropped  *metrics.Counter
	responses      *metrics.CounterVec
	latency        map[string]*metrics.Histogram
}

// Server is the sweep service: it owns the shared worker pool, the
// artifact store, the admission state, the metrics registry, and the
// bounded sweep registry. Create with NewServer; always Close (it
// drains in-flight sweeps and releases the cache).
type Server struct {
	pool     *runner.Pool
	store    *artifact.Store      // nil when caching is disabled
	results  runner.CellCache     // version-prefixed view of the results namespace
	sweepsNS *artifact.Namespace  // persisted sweep records; nil without a store
	graphs   *runner.GraphCache   // always present; store-backed when possible
	profiles *runner.ProfileCache // always present; store-backed when possible
	version  string
	vprefix  string // "v=<version>/" key prefix for version-addressed rows

	maxSweeps int // finished-sweep retention bound; 0 = unbounded
	maxActive int // running-sweep admission bound; 0 = unbounded
	limiter   *admission.Limiter

	trustProxy   bool // key the rate limiter on X-Forwarded-For
	streamBuffer int  // per-subscriber buffered-cell capacity
	streamSubs   atomic.Int64

	cluster *cluster // nil outside cluster mode (see peer.go)

	reg *metrics.Registry
	m   serverMetrics

	mu       sync.Mutex
	sweeps   map[string]*sweep
	finished *list.List // *sweep, front = most recently used
	running  int
	closed   bool
	wg       sync.WaitGroup // in-flight sweep goroutines
}

// NewServer starts the shared pool, opens the artifact store, attaches
// the topology/profile caches, installs the disk GC policy, and
// registers the metrics.
func NewServer(cfg ServerConfig) (*Server, error) {
	s := &Server{
		version:  cfg.Version,
		sweeps:   make(map[string]*sweep),
		finished: list.New(),
	}
	if s.version == "" {
		s.version = runner.CodeVersion
	}
	s.vprefix = "v=" + s.version + "/"
	switch {
	case cfg.MaxSweeps == 0:
		s.maxSweeps = DefaultMaxSweeps
	case cfg.MaxSweeps > 0:
		s.maxSweeps = cfg.MaxSweeps
	}
	s.pool = runner.NewPool(cfg.Workers)
	switch {
	case cfg.MaxActive == 0:
		s.maxActive = 4 * s.pool.Workers()
	case cfg.MaxActive > 0:
		s.maxActive = cfg.MaxActive
	}
	if cfg.RatePerSec > 0 {
		burst := cfg.Burst
		if burst <= 0 {
			burst = int(math.Max(1, 2*cfg.RatePerSec))
		}
		s.limiter = admission.NewLimiter(cfg.RatePerSec, burst, 0)
	}
	s.trustProxy = cfg.TrustProxy
	s.streamBuffer = cfg.StreamBuffer
	if s.streamBuffer <= 0 {
		s.streamBuffer = DefaultStreamBuffer
	}

	if cfg.CacheBytes >= 0 {
		if cfg.CacheDir != "" {
			store, err := artifact.NewStoreWithDisk(cfg.CacheBytes, cfg.CacheDir)
			if err != nil {
				s.pool.Close()
				return nil, fmt.Errorf("hybridnet: opening cache dir: %w", err)
			}
			s.store = store
		} else {
			s.store = artifact.NewStore(cfg.CacheBytes)
		}
		s.results = versionedCache{ns: s.store.Namespace(artifact.DefaultNamespace), prefix: s.vprefix}
		s.sweepsNS = s.store.Namespace(sweepNamespace)
		// The decoded-instance caches in front of the graph and profile
		// namespaces are the real memory tier for those artifacts:
		// their blobs only belong on disk (write-through would evict
		// result rows from the shared byte budget while duplicating
		// every decoded artifact). Without a disk tier the namespaces
		// have nothing to offer over a recomputation, so both caches
		// run store-less.
		if cfg.CacheDir != "" {
			gns := s.store.Namespace(graphNamespace)
			gns.SetDiskOnlyPuts(true)
			s.graphs = runner.NewGraphCache(gns, 0)
			pns := s.store.Namespace(profileNamespace)
			pns.SetDiskOnlyPuts(true)
			s.profiles = runner.NewProfileCache(pns, 0)
			// Disk GC (DESIGN.md §11): result rows and sweep records are
			// version-addressed, so rows under any other version prefix
			// are orphans no future Get can request — age them out.
			// Topologies and profiles are version-free by design (they
			// survive version bumps) and are always retained.
			prefix := s.vprefix
			s.store.SetGC(artifact.GCConfig{
				MaxBytes: cfg.DiskBytes,
				Retain: func(ns, key string) bool {
					if ns == artifact.DefaultNamespace || ns == sweepNamespace {
						return strings.HasPrefix(key, prefix)
					}
					return true
				},
			})
		} else {
			s.graphs = runner.NewGraphCache(nil, 0)
			s.profiles = runner.NewProfileCache(nil, 0)
		}
	} else {
		// No artifact store: topologies and profiles are still built
		// once and shared, just not persisted.
		s.graphs = runner.NewGraphCache(nil, 0)
		s.profiles = runner.NewProfileCache(nil, 0)
	}

	if len(cfg.Peers) > 0 || cfg.Self != "" {
		if len(cfg.Peers) == 0 {
			s.shutdownPartial()
			return nil, fmt.Errorf("hybridnet: Self is set but Peers is empty")
		}
		if s.store == nil {
			s.shutdownPartial()
			return nil, fmt.Errorf("hybridnet: cluster mode requires the artifact cache (CacheBytes >= 0)")
		}
		c, err := newCluster(cfg, s.version)
		if err != nil {
			s.shutdownPartial()
			return nil, err
		}
		s.cluster = c
		s.installHooks(cfg.CacheDir != "")
		c.reg.Start()
	}
	s.registerMetrics()
	return s, nil
}

// shutdownPartial releases what NewServer built before a construction
// error.
func (s *Server) shutdownPartial() {
	s.pool.Close()
	if s.store != nil {
		s.store.Close()
	}
}

// registerMetrics builds the /metrics registry: admission counters,
// pull-through gauges for cache/pool/sweep state, and per-endpoint
// latency histograms (DESIGN.md §11).
func (s *Server) registerMetrics() {
	reg := metrics.NewRegistry()
	s.reg = reg
	s.m.submitted = reg.Counter("hybridd_sweeps_submitted_total", "Sweep runs started (reused submissions excluded).")
	s.m.reused = reg.Counter("hybridd_sweeps_reused_total", "Submissions answered by an existing sweep with the same content address.")
	shed := reg.CounterVec("hybridd_admission_shed_total", "Submissions shed by admission control, by reason.", "reason")
	s.m.shedRate = shed.With("rate")
	s.m.shedCapacity = shed.With("capacity")
	s.m.evicted = reg.Counter("hybridd_sweeps_evicted_total", "Finished sweeps evicted from the bounded registry.")
	s.m.rehydrated = reg.Counter("hybridd_sweeps_rehydrated_total", "Evicted sweeps rehydrated from their persisted records.")
	s.m.resultsAborted = reg.Counter("hybridd_results_aborted_total", "Result streams aborted mid-body by a write error.")
	s.m.streamEvents = reg.Counter("hybridd_stream_events_total", "Cell events delivered to stream subscribers.")
	s.m.streamDropped = reg.Counter("hybridd_stream_dropped_total", "Stream subscribers disconnected for falling behind.")
	s.m.responses = reg.CounterVec("hybridd_http_responses_total", "HTTP responses by endpoint and status code.", "endpoint", "code")
	s.m.latency = make(map[string]*metrics.Histogram)
	// "status_wait" and "stream" are dedicated series: a ?wait=1
	// long-poll and a live stream last as long as the client chooses,
	// so folding them into "status" (or recording a stream's lifetime
	// at all — it gets time-to-first-byte instead, see instrument)
	// would poison the latency ceilings the plain endpoints are held to.
	endpoints := []string{"scenarios", "submit", "status", "status_wait", "results", "stream", "cache_stats", "metrics"}
	if s.cluster != nil {
		endpoints = append(endpoints, "peer_ping", "peer_artifact", "peer_artifact_put")
	}
	for _, ep := range endpoints {
		s.m.latency[ep] = reg.Histogram("hybridd_http_request_seconds", "Request latency by endpoint.", nil, metrics.L{Name: "endpoint", Value: ep})
	}
	reg.GaugeFunc("hybridd_stream_subscribers", "Live stream subscribers.", func() float64 { return float64(s.streamSubs.Load()) })

	if c := s.cluster; c != nil {
		// Cluster series (DESIGN.md §15): per-peer liveness, fetch
		// outcomes, graceful degradations, replication pushes. The
		// counter cells double as the cluster's own accounting (see
		// cluster.stats), so they are installed before any traffic.
		fetchVec := reg.CounterVec("hybridd_peer_fetch_total", "Remote artifact fill attempts by outcome.", "outcome")
		for _, o := range fetchOutcomes {
			c.outcomes[o] = fetchVec.With(string(o))
		}
		c.degraded = reg.Counter("hybridd_peer_degraded_total", "Local misses degraded to local compute because the owning peer was unavailable, slow, or corrupt.")
		c.replicate = reg.CounterVec("hybridd_peer_replicate_total", "Owner-directed replication pushes by outcome.", "outcome")
		for _, o := range []string{"ok", "error", "dropped"} {
			c.replicate.With(o)
		}
		c.repl.Observe = func(outcome string) { c.replicate.With(outcome).Inc() }
		for _, member := range c.ring.Members() {
			member := member
			reg.GaugeFunc("hybridd_peer_state", "Peer liveness (0=down, 1=suspect, 2=healthy).", func() float64 {
				return float64(c.reg.State(member))
			}, metrics.L{Name: "peer", Value: member})
		}
	}

	reg.GaugeFunc("hybridd_pool_workers", "Shared worker pool size.", func() float64 { return float64(s.pool.Stats().Workers) })
	reg.GaugeFunc("hybridd_pool_queued", "Cell tasks accepted but not yet dispatched.", func() float64 { return float64(s.pool.Stats().Queued) })
	reg.GaugeFunc("hybridd_pool_active", "Cell tasks currently executing.", func() float64 { return float64(s.pool.Stats().Active) })

	for _, nsName := range []string{artifact.DefaultNamespace, graphNamespace, profileNamespace} {
		nsName := nsName
		reg.GaugeFunc("hybridd_cache_hit_ratio", "Hits/(hits+misses) per artifact namespace.", func() float64 {
			if s.store == nil {
				return 0
			}
			return s.store.Namespace(nsName).Stats().HitRate()
		}, metrics.L{Name: "namespace", Value: nsName})
	}

	for _, state := range []string{SweepRunning, SweepDone, SweepFailed} {
		state := state
		reg.GaugeFunc("hybridd_sweeps", "Sweeps in the in-memory registry by state.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			n := 0
			for _, sw := range s.sweeps {
				sw.mu.Lock()
				if sw.state == state {
					n++
				}
				sw.mu.Unlock()
			}
			return float64(n)
		}, metrics.L{Name: "state", Value: state})
	}

	reg.GaugeFunc("hybridd_disk_bytes", "Disk-tier segment bytes.", func() float64 { return float64(s.diskStats().Bytes) })
	reg.GaugeFunc("hybridd_disk_live_bytes", "Disk-tier bytes still referenced by the index.", func() float64 { return float64(s.diskStats().LiveBytes) })
	reg.GaugeFunc("hybridd_disk_segments", "Disk-tier segment files.", func() float64 { return float64(s.diskStats().Segments) })
	reg.GaugeFunc("hybridd_disk_compactions_total", "Disk GC passes that rewrote or dropped a segment.", func() float64 { return float64(s.diskStats().Compactions) })
}

func (s *Server) diskStats() artifact.DiskStats {
	if s.store == nil {
		return artifact.DiskStats{}
	}
	if d := s.store.Stats().Disk; d != nil {
		return *d
	}
	return artifact.DiskStats{}
}

// Close stops admission, waits for every in-flight sweep to drain
// through the pool, then closes the pool and the cache. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
	// Cluster teardown after the sweeps drained (they may still fill
	// or replicate) and before the store closes underneath the hooks.
	if s.cluster != nil {
		s.cluster.close()
	}
	s.pool.Close()
	if s.store != nil {
		return s.store.Close()
	}
	return nil
}

// Scenarios lists the registered artifacts in canonical report order.
func (s *Server) Scenarios() []ScenarioInfo { return experiments.Artifacts() }

// CacheStats snapshots the artifact store (per-namespace and disk
// counters; zero StoreStats when caching is disabled), the topology
// and profile caches, and the worker pool.
func (s *Server) CacheStats() CacheStats {
	st := CacheStats{
		GraphCache:   s.graphs.Stats(),
		ProfileCache: s.profiles.Stats(),
		Pool:         s.pool.Stats(),
	}
	if s.store != nil {
		st.StoreStats = s.store.Stats()
	}
	if s.cluster != nil {
		st.Peers = s.cluster.stats()
	}
	return st
}

// Metrics returns the server's registry — the document served on GET
// /metrics, also usable in-process (e.g. by tests and cmd/hybridload).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Version returns the code-version component of the server's content
// addresses.
func (s *Server) Version() string { return s.version }

// normalize validates the request and fills in the canonical defaults,
// so that equivalent requests share one content address.
func (s *Server) normalize(req *SweepRequest) ([]graph.Family, error) {
	found := false
	for _, a := range experiments.Artifacts() {
		if a.Name == req.Scenario {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("unknown scenario %q", req.Scenario)
	}
	known := make(map[graph.Family]bool)
	for _, f := range graph.Families() {
		known[f] = true
	}
	fams := make([]graph.Family, 0, len(req.Families))
	for _, name := range req.Families {
		f := graph.Family(name)
		if !known[f] {
			return nil, fmt.Errorf("unknown family %q (known: %v)", name, graph.Families())
		}
		fams = append(fams, f)
	}
	if req.N < 0 || req.N > 1<<20 {
		return nil, fmt.Errorf("n %d out of range", req.N)
	}
	if req.N == 0 {
		req.N = experiments.DefaultN
	}
	if req.Seed == 0 {
		req.Seed = experiments.DefaultSeed
	}
	return fams, nil
}

// retryAfter estimates when submission capacity frees up, scaled by
// how deep the shared pool currently is.
func (s *Server) retryAfter() time.Duration {
	st := s.pool.Stats()
	secs := 1 + st.Queued/(st.Workers+1)
	if secs > 60 {
		secs = 60
	}
	return time.Duration(secs) * time.Second
}

// Submit admits one sweep. Submission is content-addressed: a request
// identical to an earlier one returns the existing sweep (Reused set)
// unless Fresh forces a re-run — which still serves repeated cells
// from the result cache. Submit never blocks on simulation; poll
// Status or block on WaitContext. When the bounded running-sweep count
// is exhausted, Submit sheds the request with *CapacityError.
func (s *Server) Submit(req SweepRequest) (SweepStatus, error) {
	fams, err := s.normalize(&req)
	if err != nil {
		return SweepStatus{}, err
	}
	id := runner.SweepID(s.version, req.Scenario, fams, req.N, req.Seed)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return SweepStatus{}, ErrServerClosed
	}
	if existing, ok := s.sweeps[id]; ok {
		// Reuse unless Fresh asks for a re-run — and even then a sweep
		// still in flight is joined, never duplicated: replacing it
		// would orphan its waiters and double the simulation.
		existing.mu.Lock()
		running := existing.state == SweepRunning
		existing.mu.Unlock()
		if running || !req.Fresh {
			s.touchLocked(existing)
			s.mu.Unlock()
			s.m.reused.Inc()
			st := existing.status()
			st.Reused = true
			return st, nil
		}
	}
	// Admission control: a bounded number of concurrently running
	// sweeps; beyond it the request is shed, never queued (§11).
	if s.maxActive > 0 && s.running >= s.maxActive {
		s.mu.Unlock()
		s.m.shedCapacity.Inc()
		return SweepStatus{}, &CapacityError{RetryAfter: s.retryAfter()}
	}
	sw := &sweep{id: id, req: req, state: SweepRunning, done: make(chan struct{}), bcast: newBroadcaster(s.streamBuffer)}
	if old := s.sweeps[id]; old != nil && old.el != nil {
		// Fresh re-run replaces a finished sweep: drop the old entry
		// from the LRU before the new one takes the map slot.
		s.finished.Remove(old.el)
	}
	s.sweeps[id] = sw
	s.running++
	s.wg.Add(1)
	s.mu.Unlock()
	s.m.submitted.Inc()

	go s.runSweep(sw, fams)
	return sw.status(), nil
}

// newRunner builds the runner every sweep (fresh or rehydrated) goes
// through: shared pool, version-prefixed result cache, shared topology
// and profile caches.
func (s *Server) newRunner(observer runner.CellObserver) *runner.Runner {
	r := &runner.Runner{
		Pool:         s.pool,
		CacheVersion: s.version,
		Graphs:       s.graphs,
		Profiles:     s.profiles,
		Observer:     observer,
	}
	if s.results != nil {
		r.Cache = s.results
	}
	return r
}

func (s *Server) runSweep(sw *sweep, fams []graph.Family) {
	defer s.wg.Done()
	cfg := experiments.ReportConfig{N: sw.req.N, Seed: sw.req.Seed, Families: fams}
	r := s.newRunner(func(ev runner.CellEvent) {
		sw.mu.Lock()
		sw.cells++
		if ev.Cached {
			sw.cached++
		}
		sw.mu.Unlock()
		if ev.Err == nil {
			// Fan the resolved cell out to stream subscribers (and into
			// the replay log for late ones). Failed cells are not
			// published: the sweep is about to fail as a whole, and the
			// terminal "failed" event carries the error.
			sw.bcast.publish(chunkFromEvent(ev))
		}
	})
	tables, err := experiments.Generate(sw.req.Scenario, cfg, r)

	// Persist the finished-sweep record before the state flips to done,
	// so any observer of "done" can already rehydrate it after an
	// eviction.
	if err == nil {
		s.persistSweep(sw)
	}
	state := SweepDone
	sw.mu.Lock()
	if err != nil {
		state = SweepFailed
		sw.state = SweepFailed
		sw.errMsg = err.Error()
	} else {
		sw.state = SweepDone
		sw.tables = tables
	}
	sw.mu.Unlock()

	// Registry bookkeeping (capacity release, LRU push, eviction of the
	// oldest finished sweep) happens before done is closed, so anyone
	// woken by Wait observes the post-completion registry.
	s.mu.Lock()
	s.running--
	s.finishLocked(sw)
	s.mu.Unlock()
	close(sw.done)
	// Terminate the streams last, after the state flip: a subscriber
	// woken by the terminal event reads the sweep's final status.
	sw.bcast.finish(state)
}

// persistSweep stores the sweep's record in the sweeps namespace under
// its version-prefixed id.
func (s *Server) persistSweep(sw *sweep) {
	if s.sweepsNS == nil {
		return
	}
	sw.mu.Lock()
	rec := sweepRecord{
		Scenario: sw.req.Scenario,
		Families: sw.req.Families,
		N:        sw.req.N,
		Seed:     sw.req.Seed,
		Cells:    sw.cells,
		Cached:   sw.cached,
	}
	sw.mu.Unlock()
	if blob, err := json.Marshal(rec); err == nil {
		s.sweepsNS.Put(s.vprefix+sw.id, blob)
	}
}

// finishLocked moves a completed sweep into the finished LRU and
// enforces the retention bound. Caller holds s.mu.
func (s *Server) finishLocked(sw *sweep) {
	if s.sweeps[sw.id] != sw {
		return // replaced by a Fresh re-run meanwhile
	}
	sw.el = s.finished.PushFront(sw)
	for s.maxSweeps > 0 && s.finished.Len() > s.maxSweeps {
		back := s.finished.Back()
		old := back.Value.(*sweep)
		s.finished.Remove(back)
		old.el = nil
		if s.sweeps[old.id] == old {
			delete(s.sweeps, old.id)
		}
		s.m.evicted.Inc()
	}
}

// touchLocked marks a finished sweep recently used. Caller holds s.mu.
func (s *Server) touchLocked(sw *sweep) {
	if sw.el != nil {
		s.finished.MoveToFront(sw.el)
	}
}

// lookup resolves a sweep id: first the in-memory registry, then — for
// sweeps evicted from the bounded registry — the persisted record,
// which rehydrates into a done sweep whose results re-render through
// the cell cache.
func (s *Server) lookup(id string) (*sweep, bool) {
	s.mu.Lock()
	sw, ok := s.sweeps[id]
	if ok {
		s.touchLocked(sw)
	}
	s.mu.Unlock()
	if ok {
		return sw, true
	}
	return s.rehydrate(id)
}

// rehydrate rebuilds an evicted sweep from its persisted record.
func (s *Server) rehydrate(id string) (*sweep, bool) {
	if s.sweepsNS == nil {
		return nil, false
	}
	blob, ok := s.sweepsNS.Get(s.vprefix + id)
	if !ok {
		return nil, false
	}
	var rec sweepRecord
	if err := json.Unmarshal(blob, &rec); err != nil {
		return nil, false
	}
	done := make(chan struct{})
	close(done)
	sw := &sweep{
		id:     id,
		req:    SweepRequest{Scenario: rec.Scenario, Families: rec.Families, N: rec.N, Seed: rec.Seed},
		state:  SweepDone,
		cells:  rec.Cells,
		cached: rec.Cached,
		done:   done,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.sweeps[id]; ok {
		return existing, true // lost the race to another rehydration
	}
	s.sweeps[id] = sw
	s.finishLocked(sw)
	s.m.rehydrated.Inc()
	return sw, true
}

// Status reports a sweep's current state.
func (s *Server) Status(id string) (SweepStatus, error) {
	sw, ok := s.lookup(id)
	if !ok {
		return SweepStatus{}, ErrUnknownSweep
	}
	return sw.status(), nil
}

// WaitContext blocks until the sweep finishes or ctx is done. On
// cancellation it returns the sweep's current status together with
// ctx's error, so a caller can both respect the deadline and report
// the in-flight state. Use it anywhere a caller waits on behalf of a
// disconnectable client, so abandoned waits don't leak goroutines.
func (s *Server) WaitContext(ctx context.Context, id string) (SweepStatus, error) {
	sw, ok := s.lookup(id)
	if !ok {
		return SweepStatus{}, ErrUnknownSweep
	}
	select {
	case <-sw.done:
		return sw.status(), nil
	case <-ctx.Done():
		return sw.status(), ctx.Err()
	}
}

// Wait blocks until the sweep finishes and returns its final status.
func (s *Server) Wait(id string) (SweepStatus, error) {
	return s.WaitContext(context.Background(), id)
}

// tables returns a finished sweep's rendered tables, regenerating them
// through the cell cache for a rehydrated sweep (cache hits make the
// re-render byte-identical to the original run; a cold cell would be
// re-simulated deterministically to the same rows). Errors are always
// returned before any output is produced.
func (s *Server) tables(sw *sweep) ([]*runner.Table, error) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	switch sw.state {
	case SweepRunning:
		return nil, ErrSweepRunning
	case SweepFailed:
		return nil, fmt.Errorf("hybridnet: sweep failed: %s", sw.errMsg)
	}
	if sw.tables != nil {
		return sw.tables, nil
	}
	req := sw.req
	fams, err := s.normalize(&req)
	if err != nil {
		return nil, fmt.Errorf("hybridnet: rehydrating sweep %s: %w", sw.id, err)
	}
	cfg := experiments.ReportConfig{N: req.N, Seed: req.Seed, Families: fams}
	tables, err := experiments.Generate(req.Scenario, cfg, s.newRunner(nil))
	if err != nil {
		return nil, fmt.Errorf("hybridnet: rehydrating sweep %s: %w", sw.id, err)
	}
	sw.tables = tables
	return tables, nil
}

// WriteResults streams a finished sweep's tables into w in the given
// format ("md", "csv", or "jsonl"; empty means markdown) through the
// runner sinks — the same rendering path as cmd/experiments, so
// cached, fresh, and rehydrated sweeps are byte-identical. Returns
// ErrSweepRunning while the sweep is in flight and the sweep's own
// error after a failure; every error path is reported before the
// first byte is written.
func (s *Server) WriteResults(w io.Writer, id, format string) error {
	sw, ok := s.lookup(id)
	if !ok {
		return ErrUnknownSweep
	}
	tables, err := s.tables(sw)
	if err != nil {
		return err
	}
	sink, err := (&experiments.ReportConfig{Format: format}).NewSink(w)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := runner.WriteTable(sink, t); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns the HTTP surface of the service:
//
//	GET  /v1/scenarios            — list the scenario registry
//	POST /v1/sweeps               — submit a SweepRequest (JSON body)
//	GET  /v1/sweeps/{id}          — poll one sweep's status (?wait=1 long-polls)
//	GET  /v1/sweeps/{id}/results  — stream results (?format=md|csv|jsonl)
//	GET  /v1/sweeps/{id}/stream   — live cell delivery (?format=sse|jsonl, DESIGN.md §12)
//	GET  /v1/cache/stats          — artifact-store and topology-cache counters
//	GET  /metrics                 — Prometheus text exposition (DESIGN.md §11)
//
// Every endpoint is instrumented (latency histogram + response-code
// counter). A known path hit with the wrong method answers 405 Method
// Not Allowed as a JSON error with an Allow header, matching the error
// shape of every other endpoint. Over-limit submissions answer 429
// with a Retry-After header.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/scenarios", s.instrument("scenarios", s.handleScenarios))
	mux.HandleFunc("POST /v1/sweeps", s.instrument("submit", s.handleSubmit))
	mux.HandleFunc("GET /v1/sweeps/{id}", s.instrument("status", s.handleStatus))
	mux.HandleFunc("GET /v1/sweeps/{id}/results", s.instrument("results", s.handleResults))
	mux.HandleFunc("GET /v1/sweeps/{id}/stream", s.instrument("stream", s.handleStream))
	mux.HandleFunc("GET /v1/cache/stats", s.instrument("cache_stats", s.handleCacheStats))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	// Method-less patterns are strictly less specific than the
	// method-qualified ones above, so they catch exactly the
	// wrong-method requests (ServeMux's built-in 405 would answer
	// text/plain, breaking the JSON error contract).
	allowByPath := map[string]string{
		"/v1/scenarios":           "GET",
		"/v1/sweeps":              "POST",
		"/v1/sweeps/{id}":         "GET",
		"/v1/sweeps/{id}/results": "GET",
		"/v1/sweeps/{id}/stream":  "GET",
		"/v1/cache/stats":         "GET",
		"/metrics":                "GET",
	}
	if s.cluster != nil {
		// Peer wire protocol (DESIGN.md §15). {key...} is a
		// rest-of-path wildcard: artifact keys contain '/' (the
		// "v=<version>/" cache prefix) that must survive as structure.
		mux.HandleFunc("GET /v1/peer/ping", s.instrument("peer_ping", s.handlePeerPing))
		mux.HandleFunc("GET /v1/peer/artifact/{ns}/{key...}", s.instrument("peer_artifact", s.handlePeerArtifactGet))
		mux.HandleFunc("PUT /v1/peer/artifact/{ns}/{key...}", s.instrument("peer_artifact_put", s.handlePeerArtifactPut))
		allowByPath["/v1/peer/ping"] = "GET"
		allowByPath["/v1/peer/artifact/{ns}/{key...}"] = "GET, PUT"
	}
	for path, allow := range allowByPath {
		mux.HandleFunc(path, methodNotAllowed(allow))
	}
	return mux
}

// statusRecorder captures the response code and first-byte time for
// the metrics layer.
type statusRecorder struct {
	http.ResponseWriter
	code      int
	start     time.Time
	firstByte time.Time
	endpoint  string // latency/response series; handlers may relabel (e.g. "status_wait")
}

func (r *statusRecorder) WriteHeader(code int) {
	r.mark()
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	r.mark()
	return r.ResponseWriter.Write(p)
}

func (r *statusRecorder) mark() {
	if r.firstByte.IsZero() {
		r.firstByte = time.Now()
	}
}

// Unwrap exposes the wrapped writer so http.NewResponseController can
// reach its Flusher: without it the recorder would swallow the
// interface and every streaming endpoint behind instrument would
// silently stop flushing.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// ttfbEndpoints record time-to-first-byte instead of handler time in
// the latency histogram: a stream's total duration is chosen by the
// subscriber, not the server, so it measures nothing about the service.
var ttfbEndpoints = map[string]bool{"stream": true}

// instrument wraps a handler with the endpoint's latency histogram and
// response-code counter. The observation runs in a defer so endpoints
// that end by aborting the connection (panic(http.ErrAbortHandler),
// the chunked-stream truncation signal) are still recorded.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK, start: time.Now(), endpoint: endpoint}
		defer func() {
			at := time.Now()
			if ttfbEndpoints[rec.endpoint] && !rec.firstByte.IsZero() {
				at = rec.firstByte
			}
			if hist := s.m.latency[rec.endpoint]; hist != nil {
				hist.Observe(at.Sub(rec.start).Seconds())
			}
			s.m.responses.With(rec.endpoint, strconv.Itoa(rec.code)).Inc()
		}()
		h(rec, r)
	}
}

// methodNotAllowed answers a wrong-method request with 405, the Allow
// header, and the service's JSON error shape. HEAD is allowed wherever
// GET is (ServeMux routes it to the GET handler, never here).
func methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeError(w, http.StatusMethodNotAllowed,
			fmt.Errorf("method %s not allowed on %s (allow: %s)", r.Method, r.URL.Path, allow))
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// retryAfterSeconds renders a Retry-After header value (whole seconds,
// rounded up, at least 1).
func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// clientKey identifies a client for rate limiting: the host part of
// the remote address, so every connection from one source shares one
// bucket regardless of port. With TrustProxy set, the first hop of
// X-Forwarded-For — the original client as recorded by the fronting
// proxy — takes precedence; otherwise the header is ignored, since a
// directly exposed server would be trusting a client-forgeable value.
func (s *Server) clientKey(r *http.Request) string {
	if s.trustProxy {
		if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
			first, _, _ := strings.Cut(xff, ",")
			if first = strings.TrimSpace(first); first != "" {
				return first
			}
		}
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// scenariosResponse is the GET /v1/scenarios document.
type scenariosResponse struct {
	Scenarios []ScenarioInfo `json:"scenarios"`
	Families  []string       `json:"families"`
	Defaults  map[string]any `json:"defaults"`
	Version   string         `json:"version"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	fams := graph.Families()
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = string(f)
	}
	writeJSON(w, http.StatusOK, scenariosResponse{
		Scenarios: s.Scenarios(),
		Families:  names,
		Defaults:  map[string]any{"n": experiments.DefaultN, "seed": experiments.DefaultSeed},
		Version:   s.version,
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Per-client token-bucket rate limiting (DESIGN.md §11): shed
	// before touching the body, with a JSON 429 + Retry-After.
	if s.limiter != nil {
		if ok, retry := s.limiter.Allow(s.clientKey(r)); !ok {
			s.m.shedRate.Inc()
			w.Header().Set("Retry-After", retryAfterSeconds(retry))
			writeError(w, http.StatusTooManyRequests,
				fmt.Errorf("rate limit exceeded; retry after %s", retry.Round(time.Millisecond)))
			return
		}
	}
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	st, err := s.Submit(req)
	if err != nil {
		var cap *CapacityError
		switch {
		case errors.As(err, &cap):
			w.Header().Set("Retry-After", retryAfterSeconds(cap.RetryAfter))
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrServerClosed):
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	code := http.StatusAccepted
	if st.Reused {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if wait := r.URL.Query().Get("wait"); wait == "1" || wait == "true" {
		// A long-poll's duration is the sweep's runtime, not the
		// handler's — record it under its own latency series so it
		// can't poison the plain status endpoint's ceiling.
		if rec, ok := w.(*statusRecorder); ok {
			rec.endpoint = "status_wait"
		}
		// Long-poll bound to the client connection: a disconnect
		// cancels r.Context(), so abandoned waiters don't pile up.
		st, err := s.WaitContext(r.Context(), id)
		switch {
		case err == nil, errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			writeJSON(w, http.StatusOK, st)
		default:
			writeError(w, http.StatusNotFound, err)
		}
		return
	}
	st, err := s.Status(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	format := r.URL.Query().Get("format")
	// The format whitelist is the experiments package's own sink
	// table, so the two cannot drift.
	ct, ok := experiments.FormatContentType(format)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want %s)", format, strings.Join(experiments.Formats(), ", ")))
		return
	}
	sw, found := s.lookup(id)
	if !found {
		writeError(w, http.StatusNotFound, ErrUnknownSweep)
		return
	}
	// Materialize everything fallible before the first body byte, so
	// failures still get a proper JSON status: a running sweep is 409,
	// a failed or unrehydratable one 500.
	tables, err := s.tables(sw)
	if err != nil {
		if errors.Is(err, ErrSweepRunning) {
			writeError(w, http.StatusConflict, err)
		} else {
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	sink, err := (&experiments.ReportConfig{Format: format}).NewSink(w)
	if err != nil {
		// Unreachable while NewSink accepts exactly the formats
		// FormatContentType does; still pre-first-byte if it ever fires.
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", ct)
	for _, t := range tables {
		if err := runner.WriteTable(sink, t); err != nil {
			// Mid-stream write error: the response is already
			// streaming, so HTTP can only abort the body. Count it.
			s.m.resultsAborted.Inc()
			return
		}
	}
}

func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.CacheStats())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteText(w)
}
