package hybridnet

// The sweep service (DESIGN.md §7, §9, §10): a long-running server
// over the scenario registry of internal/experiments, with a shared
// fair worker pool (runner.Pool) as the batching admission layer and a
// namespaced content-addressed artifact store (internal/artifact)
// underneath — result rows in one namespace, frozen CSR topologies in
// a second, derived ball-profile artifacts in a third — so repeated
// cells are served without re-simulation, every distinct graph
// instance is built exactly once across points, sweeps, and restarts,
// and every NQ-bearing sweep grows each instance's ball profiles
// exactly once. cmd/hybridd is the stdlib net/http binary over
// Handler; everything here is equally usable in-process
// (NewServer / Submit / Wait / WriteResults).

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/artifact"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/runner"
)

// graphNamespace is the artifact namespace holding encoded frozen
// topologies (artifact.DefaultNamespace holds the result rows).
const graphNamespace = "graphs"

// profileNamespace is the artifact namespace holding encoded
// ball-profile artifacts derived from the topologies (DESIGN.md §10).
const profileNamespace = "profiles"

// ScenarioInfo describes one sweepable artifact of the scenario
// registry, as listed by GET /v1/scenarios.
type ScenarioInfo = experiments.Artifact

// CacheStats is the /v1/cache/stats document: the artifact store's
// cross-namespace totals (flat, backward-compatible fields), the
// per-namespace breakdown, the disk-tier counters, and the topology
// cache of decoded graph instances.
type CacheStats struct {
	artifact.StoreStats
	// GraphCache counts decoded-topology traffic: builds, shared-
	// instance hits, blob-store restores, singleflight joins.
	GraphCache runner.GraphCacheStats `json:"graph_cache"`
	// ProfileCache counts derived ball-profile traffic: batch-kernel
	// computations, attached-artifact hits, blob-store restores,
	// singleflight joins (DESIGN.md §10).
	ProfileCache runner.ProfileCacheStats `json:"profile_cache"`
}

// Sweep-lifecycle errors.
var (
	// ErrUnknownSweep: no sweep with that id was submitted.
	ErrUnknownSweep = errors.New("hybridnet: unknown sweep")
	// ErrSweepRunning: results were requested before the sweep finished.
	ErrSweepRunning = errors.New("hybridnet: sweep still running")
	// ErrServerClosed: the server no longer admits sweeps.
	ErrServerClosed = errors.New("hybridnet: server closed")
)

// Sweep states reported by SweepStatus.State.
const (
	SweepRunning = "running"
	SweepDone    = "done"
	SweepFailed  = "failed"
)

// ServerConfig parameterizes a sweep server. The zero value is usable:
// GOMAXPROCS workers, a DefaultMaxBytes in-memory cache, no disk tier.
type ServerConfig struct {
	// Workers sizes the shared worker pool every sweep's cells are
	// scheduled on (≤ 0 means GOMAXPROCS).
	Workers int
	// CacheBytes bounds the in-memory artifact-store tier (result rows
	// and encoded topologies share the budget); 0 means
	// artifact.DefaultMaxBytes, negative disables the store entirely
	// (topologies are then still deduplicated in memory, but nothing
	// is content-addressed or persisted).
	CacheBytes int64
	// CacheDir, when non-empty, adds the persistent disk tier: results
	// and topologies survive restarts and are served from disk after
	// eviction.
	CacheDir string
	// Version overrides the code-version component of every content
	// address (default runner.CodeVersion). Two servers sharing a
	// CacheDir must agree on it.
	Version string
}

// SweepRequest is a sweep submission: one registered scenario swept
// over a family axis at one instance size and seed. Zero N and Seed
// take the report defaults (n = 576, seed = 1); an empty Families list
// selects the scenario's default axis.
type SweepRequest struct {
	Scenario string   `json:"scenario"`
	Families []string `json:"families,omitempty"`
	N        int      `json:"n,omitempty"`
	Seed     int64    `json:"seed,omitempty"`
	// Fresh forces re-execution when a *finished* sweep with the same
	// content address exists (a still-running one is joined instead of
	// duplicated). Cells still resolve through the result cache, so a
	// fresh resubmission re-renders from cache hits rather than
	// re-simulating.
	Fresh bool `json:"fresh,omitempty"`
}

// SweepStatus is the externally visible state of one sweep.
type SweepStatus struct {
	// ID is the sweep's content address (runner.SweepID): identical
	// requests map to identical ids.
	ID       string `json:"id"`
	Scenario string `json:"scenario"`
	// State is SweepRunning, SweepDone, or SweepFailed.
	State string `json:"state"`
	// Cells counts grid cells resolved so far; CachedCells is the
	// subset served from the result cache without touching the pool.
	Cells       int `json:"cells"`
	CachedCells int `json:"cached_cells"`
	// Reused reports (on Submit only) that a finished or in-flight
	// sweep with the same content address was returned instead of
	// starting a new run.
	Reused bool `json:"reused,omitempty"`
	// Error carries the failure when State is SweepFailed.
	Error string `json:"error,omitempty"`
}

// sweep is the server-side state of one submission.
type sweep struct {
	id  string
	req SweepRequest

	mu     sync.Mutex
	state  string
	errMsg string
	tables []*runner.Table
	cells  int
	cached int

	done chan struct{}
}

func (sw *sweep) status() SweepStatus {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return SweepStatus{
		ID:          sw.id,
		Scenario:    sw.req.Scenario,
		State:       sw.state,
		Cells:       sw.cells,
		CachedCells: sw.cached,
		Error:       sw.errMsg,
	}
}

// Server is the sweep service: it owns the shared worker pool, the
// result cache, and the sweep store. Create with NewServer; always
// Close (it drains in-flight sweeps and releases the cache).
type Server struct {
	pool     *runner.Pool
	store    *artifact.Store      // nil when caching is disabled
	results  *artifact.Namespace  // result-row namespace of store
	graphs   *runner.GraphCache   // always present; store-backed when possible
	profiles *runner.ProfileCache // always present; store-backed when possible
	version  string

	mu     sync.Mutex
	sweeps map[string]*sweep
	closed bool
	wg     sync.WaitGroup // in-flight sweep goroutines
}

// NewServer starts the shared pool, opens the artifact store, and
// attaches the topology cache to its graph namespace.
func NewServer(cfg ServerConfig) (*Server, error) {
	s := &Server{
		version: cfg.Version,
		sweeps:  make(map[string]*sweep),
	}
	if s.version == "" {
		s.version = runner.CodeVersion
	}
	if cfg.CacheBytes >= 0 {
		if cfg.CacheDir != "" {
			store, err := artifact.NewStoreWithDisk(cfg.CacheBytes, cfg.CacheDir)
			if err != nil {
				return nil, fmt.Errorf("hybridnet: opening cache dir: %w", err)
			}
			s.store = store
		} else {
			s.store = artifact.NewStore(cfg.CacheBytes)
		}
		s.results = s.store.Namespace(artifact.DefaultNamespace)
		// The decoded-instance caches in front of the graph and profile
		// namespaces are the real memory tier for those artifacts:
		// their blobs only belong on disk (write-through would evict
		// result rows from the shared byte budget while duplicating
		// every decoded artifact). Without a disk tier the namespaces
		// have nothing to offer over a recomputation, so both caches
		// run store-less.
		if cfg.CacheDir != "" {
			gns := s.store.Namespace(graphNamespace)
			gns.SetDiskOnlyPuts(true)
			s.graphs = runner.NewGraphCache(gns, 0)
			pns := s.store.Namespace(profileNamespace)
			pns.SetDiskOnlyPuts(true)
			s.profiles = runner.NewProfileCache(pns, 0)
		} else {
			s.graphs = runner.NewGraphCache(nil, 0)
			s.profiles = runner.NewProfileCache(nil, 0)
		}
	} else {
		// No artifact store: topologies and profiles are still built
		// once and shared, just not persisted.
		s.graphs = runner.NewGraphCache(nil, 0)
		s.profiles = runner.NewProfileCache(nil, 0)
	}
	s.pool = runner.NewPool(cfg.Workers)
	return s, nil
}

// Close stops admission, waits for every in-flight sweep to drain
// through the pool, then closes the pool and the cache. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
	s.pool.Close()
	if s.store != nil {
		return s.store.Close()
	}
	return nil
}

// Scenarios lists the registered artifacts in canonical report order.
func (s *Server) Scenarios() []ScenarioInfo { return experiments.Artifacts() }

// CacheStats snapshots the artifact store (per-namespace and disk
// counters; zero StoreStats when caching is disabled) and the topology
// cache.
func (s *Server) CacheStats() CacheStats {
	st := CacheStats{GraphCache: s.graphs.Stats(), ProfileCache: s.profiles.Stats()}
	if s.store != nil {
		st.StoreStats = s.store.Stats()
	}
	return st
}

// Version returns the code-version component of the server's content
// addresses.
func (s *Server) Version() string { return s.version }

// normalize validates the request and fills in the canonical defaults,
// so that equivalent requests share one content address.
func (s *Server) normalize(req *SweepRequest) ([]graph.Family, error) {
	found := false
	for _, a := range experiments.Artifacts() {
		if a.Name == req.Scenario {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("unknown scenario %q", req.Scenario)
	}
	known := make(map[graph.Family]bool)
	for _, f := range graph.Families() {
		known[f] = true
	}
	fams := make([]graph.Family, 0, len(req.Families))
	for _, name := range req.Families {
		f := graph.Family(name)
		if !known[f] {
			return nil, fmt.Errorf("unknown family %q (known: %v)", name, graph.Families())
		}
		fams = append(fams, f)
	}
	if req.N < 0 || req.N > 1<<20 {
		return nil, fmt.Errorf("n %d out of range", req.N)
	}
	if req.N == 0 {
		req.N = experiments.DefaultN
	}
	if req.Seed == 0 {
		req.Seed = experiments.DefaultSeed
	}
	return fams, nil
}

// Submit admits one sweep. Submission is content-addressed: a request
// identical to an earlier one returns the existing sweep (Reused set)
// unless Fresh forces a re-run — which still serves repeated cells
// from the result cache. Submit never blocks on simulation; poll
// Status or block on Wait.
func (s *Server) Submit(req SweepRequest) (SweepStatus, error) {
	fams, err := s.normalize(&req)
	if err != nil {
		return SweepStatus{}, err
	}
	id := runner.SweepID(s.version, req.Scenario, fams, req.N, req.Seed)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return SweepStatus{}, ErrServerClosed
	}
	if existing, ok := s.sweeps[id]; ok {
		// Reuse unless Fresh asks for a re-run — and even then a sweep
		// still in flight is joined, never duplicated: replacing it
		// would orphan its waiters and double the simulation.
		existing.mu.Lock()
		running := existing.state == SweepRunning
		existing.mu.Unlock()
		if running || !req.Fresh {
			s.mu.Unlock()
			st := existing.status()
			st.Reused = true
			return st, nil
		}
	}
	sw := &sweep{id: id, req: req, state: SweepRunning, done: make(chan struct{})}
	s.sweeps[id] = sw
	s.wg.Add(1)
	s.mu.Unlock()

	go s.runSweep(sw, fams)
	return sw.status(), nil
}

func (s *Server) runSweep(sw *sweep, fams []graph.Family) {
	defer s.wg.Done()
	cfg := experiments.ReportConfig{N: sw.req.N, Seed: sw.req.Seed, Families: fams}
	r := &runner.Runner{
		Pool:         s.pool,
		CacheVersion: s.version,
		Graphs:       s.graphs,
		Profiles:     s.profiles,
		Observer: func(ev runner.CellEvent) {
			sw.mu.Lock()
			sw.cells++
			if ev.Cached {
				sw.cached++
			}
			sw.mu.Unlock()
		},
	}
	if s.results != nil {
		r.Cache = s.results
	}
	tables, err := experiments.Generate(sw.req.Scenario, cfg, r)
	sw.mu.Lock()
	if err != nil {
		sw.state = SweepFailed
		sw.errMsg = err.Error()
	} else {
		sw.state = SweepDone
		sw.tables = tables
	}
	sw.mu.Unlock()
	close(sw.done)
}

func (s *Server) sweep(id string) (*sweep, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	return sw, ok
}

// Status reports a sweep's current state.
func (s *Server) Status(id string) (SweepStatus, error) {
	sw, ok := s.sweep(id)
	if !ok {
		return SweepStatus{}, ErrUnknownSweep
	}
	return sw.status(), nil
}

// Wait blocks until the sweep finishes and returns its final status.
func (s *Server) Wait(id string) (SweepStatus, error) {
	sw, ok := s.sweep(id)
	if !ok {
		return SweepStatus{}, ErrUnknownSweep
	}
	<-sw.done
	return sw.status(), nil
}

// WriteResults streams a finished sweep's tables into w in the given
// format ("md", "csv", or "jsonl"; empty means markdown) through the
// runner sinks — the same rendering path as cmd/experiments, so cached
// and fresh sweeps are byte-identical. Returns ErrSweepRunning while
// the sweep is in flight and the sweep's own error after a failure.
func (s *Server) WriteResults(w io.Writer, id, format string) error {
	sw, ok := s.sweep(id)
	if !ok {
		return ErrUnknownSweep
	}
	return sw.writeResults(w, format)
}

// writeResults renders this sweep's tables; sweep state only moves
// forward (running → done/failed), so a caller that already observed
// done cannot race back into ErrSweepRunning here.
func (sw *sweep) writeResults(w io.Writer, format string) error {
	sw.mu.Lock()
	state, errMsg, tables := sw.state, sw.errMsg, sw.tables
	sw.mu.Unlock()
	switch state {
	case SweepRunning:
		return ErrSweepRunning
	case SweepFailed:
		return fmt.Errorf("hybridnet: sweep failed: %s", errMsg)
	}
	sink, err := (&experiments.ReportConfig{Format: format}).NewSink(w)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := runner.WriteTable(sink, t); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns the HTTP surface of the service:
//
//	GET  /v1/scenarios            — list the scenario registry
//	POST /v1/sweeps               — submit a SweepRequest (JSON body)
//	GET  /v1/sweeps/{id}          — poll one sweep's status
//	GET  /v1/sweeps/{id}/results  — stream results (?format=md|csv|jsonl)
//	GET  /v1/cache/stats          — artifact-store and topology-cache counters
//
// A known /v1/* path hit with the wrong method answers 405 Method Not
// Allowed as a JSON error with an Allow header, matching the error
// shape of every other endpoint.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleResults)
	mux.HandleFunc("GET /v1/cache/stats", s.handleCacheStats)
	// Method-less patterns are strictly less specific than the
	// method-qualified ones above, so they catch exactly the
	// wrong-method requests (ServeMux's built-in 405 would answer
	// text/plain, breaking the JSON error contract).
	for path, allow := range map[string]string{
		"/v1/scenarios":           "GET",
		"/v1/sweeps":              "POST",
		"/v1/sweeps/{id}":         "GET",
		"/v1/sweeps/{id}/results": "GET",
		"/v1/cache/stats":         "GET",
	} {
		mux.HandleFunc(path, methodNotAllowed(allow))
	}
	return mux
}

// methodNotAllowed answers a wrong-method request with 405, the Allow
// header, and the service's JSON error shape. HEAD is allowed wherever
// GET is (ServeMux routes it to the GET handler, never here).
func methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeError(w, http.StatusMethodNotAllowed,
			fmt.Errorf("method %s not allowed on %s (allow: %s)", r.Method, r.URL.Path, allow))
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// scenariosResponse is the GET /v1/scenarios document.
type scenariosResponse struct {
	Scenarios []ScenarioInfo `json:"scenarios"`
	Families  []string       `json:"families"`
	Defaults  map[string]any `json:"defaults"`
	Version   string         `json:"version"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	fams := graph.Families()
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = string(f)
	}
	writeJSON(w, http.StatusOK, scenariosResponse{
		Scenarios: s.Scenarios(),
		Families:  names,
		Defaults:  map[string]any{"n": experiments.DefaultN, "seed": experiments.DefaultSeed},
		Version:   s.version,
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	st, err := s.Submit(req)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrServerClosed) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	code := http.StatusAccepted
	if st.Reused {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// resultContentTypes maps formats to their media types.
var resultContentTypes = map[string]string{
	"":      "text/markdown; charset=utf-8",
	"md":    "text/markdown; charset=utf-8",
	"csv":   "text/csv; charset=utf-8",
	"jsonl": "application/x-ndjson",
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	format := r.URL.Query().Get("format")
	ct, ok := resultContentTypes[format]
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want md, csv or jsonl)", format))
		return
	}
	sw, found := s.sweep(id)
	if !found {
		writeError(w, http.StatusNotFound, ErrUnknownSweep)
		return
	}
	sw.mu.Lock()
	state, errMsg := sw.state, sw.errMsg
	sw.mu.Unlock()
	switch state {
	case SweepRunning:
		writeError(w, http.StatusConflict, ErrSweepRunning)
		return
	case SweepFailed:
		writeError(w, http.StatusInternalServerError, fmt.Errorf("sweep failed: %s", errMsg))
		return
	}
	w.Header().Set("Content-Type", ct)
	// Rendering the same sweep object that was checked above: state
	// only moves forward, so the remaining failure mode is a write
	// error on an already-streaming response, which HTTP cannot
	// surface other than by aborting the body.
	_ = sw.writeResults(w, format)
}

func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.CacheStats())
}
