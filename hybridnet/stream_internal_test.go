package hybridnet

// White-box tests for the streaming seams that are invisible from the
// public surface: the broadcaster's bounded-buffer drop policy, the
// streamLoop disconnect it triggers, the statusRecorder's Unwrap (the
// http.Flusher regression behind instrument), and the rate limiter's
// client keying in both proxy-trust modes.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestBroadcasterSlowConsumerDrop: a subscriber whose buffer is full
// is marked dropped and closed without blocking publish; its buffered
// chunks stay readable, and later publishes don't touch it.
func TestBroadcasterSlowConsumerDrop(t *testing.T) {
	b := newBroadcaster(1)
	replay, sub, terminal := b.subscribe()
	if len(replay) != 0 || sub == nil || terminal != "" {
		t.Fatalf("fresh subscribe: replay=%d sub=%v terminal=%q", len(replay), sub, terminal)
	}
	b.publish(cellChunk{index: 0}) // fills the buffer
	b.publish(cellChunk{index: 1}) // overflows: must not block, must drop
	if !b.wasDropped(sub) {
		t.Fatal("overflowed subscriber not marked dropped")
	}
	if c, ok := <-sub.ch; !ok || c.index != 0 {
		t.Fatalf("buffered chunk lost after drop: %v %v", c, ok)
	}
	if _, ok := <-sub.ch; ok {
		t.Fatal("dropped subscriber's channel not closed")
	}
	b.publish(cellChunk{index: 2}) // must not panic on the closed channel
	b.unsubscribe(sub)             // must tolerate an already-dropped sub
}

// TestStreamLoopSlowConsumerDisconnect: end to end through streamLoop,
// a consumer that stalls while the sweep keeps resolving cells is
// disconnected with a terminal dropped event and ErrStreamLagged.
func TestStreamLoopSlowConsumerDisconnect(t *testing.T) {
	srv, err := NewServer(ServerConfig{Workers: 1, CacheBytes: -1, StreamBuffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sw := &sweep{id: "sw-test", state: SweepRunning, done: make(chan struct{}), bcast: newBroadcaster(1)}
	sw.bcast.publish(cellChunk{index: 0}) // lands in the replay snapshot

	release := make(chan struct{})
	var events []StreamEvent
	errc := make(chan error, 1)
	go func() {
		errc <- srv.streamLoop(context.Background(), sw, 0, func(ev StreamEvent) error {
			if len(events) == 0 {
				<-release // stall on the first delivery
			}
			events = append(events, ev)
			return nil
		})
	}()

	// Wait for the subscription, then resolve more cells than the
	// stalled subscriber's one-chunk buffer can hold.
	deadline := time.Now().Add(10 * time.Second)
	for {
		sw.bcast.mu.Lock()
		n := len(sw.bcast.subs)
		sw.bcast.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("streamLoop never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	sw.bcast.publish(cellChunk{index: 1}) // buffered
	sw.bcast.publish(cellChunk{index: 2}) // overflow: disconnects the sub
	close(release)

	if err := <-errc; err != ErrStreamLagged {
		t.Fatalf("streamLoop error = %v, want ErrStreamLagged", err)
	}
	if len(events) == 0 || events[len(events)-1].Kind != StreamDropped {
		t.Fatalf("events = %+v, want terminal dropped event", events)
	}
	var got []int
	for _, ev := range events[:len(events)-1] {
		if ev.Kind != StreamCell {
			t.Fatalf("unexpected %q event before the drop", ev.Kind)
		}
		got = append(got, ev.Index)
	}
	// The replayed cell and the one buffered chunk arrive; the
	// overflowing cell is what triggered the disconnect.
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("delivered cells %v, want [0 1]", got)
	}
}

// TestInstrumentPreservesFlusher is the statusRecorder regression
// test: a streaming handler behind instrument must still reach the
// server's http.Flusher through http.NewResponseController. Before
// Unwrap existed, the recorder silently swallowed the interface.
func TestInstrumentPreservesFlusher(t *testing.T) {
	srv, err := NewServer(ServerConfig{Workers: 1, CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var flushErr error
	h := srv.instrument("metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("x"))
		flushErr = http.NewResponseController(w).Flush()
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/metrics", nil))
	if flushErr != nil {
		t.Fatalf("Flush through instrument: %v (statusRecorder must expose Unwrap)", flushErr)
	}
	if !rec.Flushed {
		t.Fatal("underlying ResponseWriter never saw the flush")
	}
}

// TestClientKeyTrustProxy: by default the limiter keys on the socket
// address even when X-Forwarded-For is present (the header is
// client-forgeable); with TrustProxy it keys on the header's first
// hop — the original client as recorded by the proxy — and still
// falls back to the socket address when the header is absent.
func TestClientKeyTrustProxy(t *testing.T) {
	direct, err := NewServer(ServerConfig{Workers: 1, CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	proxied, err := NewServer(ServerConfig{Workers: 1, CacheBytes: -1, TrustProxy: true})
	if err != nil {
		t.Fatal(err)
	}
	defer proxied.Close()

	req := httptest.NewRequest("POST", "/v1/sweeps", nil)
	req.RemoteAddr = "10.0.0.1:4242"
	req.Header.Set("X-Forwarded-For", " 203.0.113.7 , 198.51.100.2")

	if got := direct.clientKey(req); got != "10.0.0.1" {
		t.Errorf("default mode key = %q, want socket host", got)
	}
	if got := proxied.clientKey(req); got != "203.0.113.7" {
		t.Errorf("trust-proxy key = %q, want first X-Forwarded-For hop", got)
	}
	req.Header.Del("X-Forwarded-For")
	if got := proxied.clientKey(req); got != "10.0.0.1" {
		t.Errorf("trust-proxy without header = %q, want socket host", got)
	}
}
