package hybridnet

// Cluster mode (DESIGN.md §15): a static membership of hybridd peers
// shares its content-addressed artifacts. A consistent-hash ring over
// namespace-qualified keys assigns every blob a primary owner; each
// peer probes the others' liveness, pulls missing blobs from their
// owner on a local cache miss (verified against the content hash,
// singleflighted, written through locally), and pushes every locally
// computed blob to its owner asynchronously. Every peer interaction is
// allowed to fail — the fill path degrades to local compute and counts
// the degradation, mirroring how the HYBRID model's global network is
// useful but never load-bearing for correctness.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"

	"repro/internal/artifact"
	"repro/internal/metrics"
	"repro/internal/peer"
)

// PeerStats is the cluster section of /v1/cache/stats: membership with
// liveness, fetch outcomes, degradations, and the replication queue.
type PeerStats struct {
	Self     string        `json:"self"`
	Members  []peer.Status `json:"members"`
	// Fetch counts remote fill attempts by outcome
	// (hit/miss/error/timeout).
	Fetch map[string]uint64 `json:"fetch"`
	// Degraded counts local misses that fell back to local compute
	// because the owning peer was unreachable, slow, or corrupt.
	Degraded uint64 `json:"degraded"`
	// Replication is the owner-directed push queue.
	Replication peer.ReplicatorStats `json:"replication"`
}

// cluster bundles the server's peer-layer state.
type cluster struct {
	self  string
	reg   *peer.Registry
	ring  *peer.Ring
	fetch *peer.Fetcher
	repl  *peer.Replicator

	// Metric cells, installed by registerMetrics before any traffic.
	degraded  *metrics.Counter
	outcomes  map[peer.Outcome]*metrics.Counter
	replicate *metrics.CounterVec
}

// fetchOutcomes is the full label set of hybridd_peer_fetch_total,
// pre-created so the series exist at zero.
var fetchOutcomes = []peer.Outcome{peer.OutcomeHit, peer.OutcomeMiss, peer.OutcomeError, peer.OutcomeTimeout}

// newCluster validates the peer configuration and builds the registry,
// ring, fetcher and replicator. The caller starts probing and installs
// the namespace hooks.
func newCluster(cfg ServerConfig, version string) (*cluster, error) {
	pcfg := peer.Config{
		Self:          cfg.Self,
		Peers:         cfg.Peers,
		Version:       version,
		ProbeInterval: cfg.PeerProbeInterval,
		FetchTimeout:  cfg.PeerFetchTimeout,
		HedgeDelay:    cfg.PeerHedgeDelay,
		Seed:          cfg.PeerSeed,
		Transport:     cfg.PeerTransport,
	}
	reg, err := peer.NewRegistry(pcfg)
	if err != nil {
		return nil, fmt.Errorf("hybridnet: %w", err)
	}
	return &cluster{
		self:     cfg.Self,
		reg:      reg,
		ring:     peer.NewRing(cfg.Peers, 0),
		fetch:    peer.NewFetcher(pcfg, reg),
		repl:     peer.NewReplicator(pcfg, reg),
		outcomes: make(map[peer.Outcome]*metrics.Counter, len(fetchOutcomes)),
	}, nil
}

// close stops liveness probing and drains the replication queue
// best-effort.
func (c *cluster) close() {
	c.repl.Close()
	c.reg.Close()
}

// qualify builds the ring key: namespaces are independent key spaces,
// so ownership is decided on the (namespace, key) pair.
func qualify(nsName, key string) string { return nsName + "\x00" + key }

// fill returns the artifact.FillFunc for one namespace: resolve the
// owner on the ring, fetch with retry/backoff and a bounded hedge, and
// classify the outcome. Anything but a verified hit degrades to local
// compute — the fill never fails a sweep.
func (c *cluster) fill(nsName string) artifact.FillFunc {
	return func(key string) ([]byte, string, error) {
		owners := c.ring.Owners(qualify(nsName, key), 2)
		candidates := owners[:0:0]
		for _, o := range owners {
			if o != c.self {
				candidates = append(candidates, o)
			}
		}
		if len(owners) == 0 || owners[0] == c.self || len(candidates) == 0 {
			// This peer is the key's owner (or is alone on the ring):
			// there is no better-informed peer to ask, so a local miss
			// is authoritative. Not a peer interaction, not counted.
			return nil, "", artifact.ErrFillUnavailable
		}
		blob, digest, outcome := c.fetch.Fetch(context.Background(), nsName, key, candidates)
		if ctr := c.outcomes[outcome]; ctr != nil {
			ctr.Inc()
		}
		switch outcome {
		case peer.OutcomeHit:
			return blob, digest, nil
		case peer.OutcomeMiss:
			// Every consulted owner authoritatively lacks the blob; the
			// local compute that follows is first-time work, not a
			// degradation.
			return nil, "", artifact.ErrFillUnavailable
		default:
			if c.degraded != nil {
				c.degraded.Inc()
			}
			return nil, "", fmt.Errorf("hybridnet: peer fetch %s blob: %s", nsName, outcome)
		}
	}
}

// replicateHook returns the artifact.ReplicateFunc for one namespace:
// offer every locally computed blob to its ring owner. Self-owned
// blobs stay put; the push is async and best-effort.
func (c *cluster) replicateHook(nsName string) artifact.ReplicateFunc {
	return func(key string, value []byte) {
		owner := c.ring.Owner(qualify(nsName, key))
		if owner == "" || owner == c.self {
			return
		}
		c.repl.Enqueue(owner, nsName, key, value)
	}
}

// stats snapshots the cluster for /v1/cache/stats.
func (c *cluster) stats() *PeerStats {
	st := &PeerStats{
		Self:        c.self,
		Members:     c.reg.Snapshot(),
		Fetch:       make(map[string]uint64, len(fetchOutcomes)),
		Replication: c.repl.Stats(),
	}
	for o, ctr := range c.outcomes {
		st.Fetch[string(o)] = ctr.Value()
	}
	if c.degraded != nil {
		st.Degraded = c.degraded.Value()
	}
	return st
}

// installHooks wires the fill and replicate hooks into every clustered
// namespace. Results always participate; the graph and profile
// namespaces only when they are store-backed (diskBacked: CacheDir
// set), since without a disk tier their blobs have nowhere local to
// live — the decoded caches in front of them would recompute anyway.
func (s *Server) installHooks(diskBacked bool) {
	nss := []*artifact.Namespace{s.store.Namespace(artifact.DefaultNamespace)}
	if diskBacked {
		nss = append(nss, s.store.Namespace(graphNamespace), s.store.Namespace(profileNamespace))
	}
	for _, ns := range nss {
		ns.SetFill(s.cluster.fill(ns.Name()))
		ns.SetReplicate(s.cluster.replicateHook(ns.Name()))
	}
}

// peerNamespace resolves the {ns} path segment of the peer artifact
// endpoints to a clustered namespace. The sweeps namespace is excluded
// on purpose: records are tiny, derived, and re-persisted by whichever
// peer finishes the sweep.
func (s *Server) peerNamespace(name string) (*artifact.Namespace, bool) {
	switch name {
	case artifact.DefaultNamespace, graphNamespace, profileNamespace:
		return s.store.Namespace(name), true
	default:
		return nil, false
	}
}

// handlePeerPing answers the liveness probe with this peer's identity
// and artifact code version (a version-skewed peer is useless as a
// blob source — its keys live under another prefix).
func (s *Server) handlePeerPing(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"self":    s.cluster.self,
		"version": s.version,
	})
}

// handlePeerArtifactGet serves one blob to a fetching peer, strictly
// from the local tiers (GetLocal — a fill here would recurse across
// the cluster). The content digest rides in a header so the fetcher
// can verify the bytes end to end.
func (s *Server) handlePeerArtifactGet(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.peerNamespace(r.PathValue("ns"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown artifact namespace %q", r.PathValue("ns")))
		return
	}
	blob, ok := ns.GetLocal(r.PathValue("key"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such artifact"))
		return
	}
	sum := sha256.Sum256(blob)
	w.Header().Set(peer.DigestHeader, hex.EncodeToString(sum[:]))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(blob)
}

// handlePeerArtifactPut accepts an owner-directed replication push:
// verify the advertised digest, then store locally (PutLocal — the
// receiver is the owner, re-offering the blob to the ring would only
// echo it back).
func (s *Server) handlePeerArtifactPut(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.peerNamespace(r.PathValue("ns"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown artifact namespace %q", r.PathValue("ns")))
		return
	}
	blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, peer.MaxBlobBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading blob: %w", err))
		return
	}
	sum := sha256.Sum256(blob)
	if want := r.Header.Get(peer.DigestHeader); want == "" || want != hex.EncodeToString(sum[:]) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("blob digest mismatch (header %q)", want))
		return
	}
	ns.PutLocal(r.PathValue("key"), blob)
	w.WriteHeader(http.StatusNoContent)
}
