package hybridnet_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/hybridnet"
)

func newNet(t *testing.T, g *hybridnet.Graph) *hybridnet.Network {
	t.Helper()
	net, err := hybridnet.NewNetwork(g, hybridnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestPublicGenerators(t *testing.T) {
	cases := []struct {
		name string
		g    *hybridnet.Graph
		n    int
	}{
		{"path", hybridnet.Path(10), 10},
		{"cycle", hybridnet.Cycle(10), 10},
		{"grid2d", hybridnet.Grid2D(4), 16},
		{"grid", hybridnet.Grid(3, 3), 27},
		{"torus", hybridnet.Torus(4, 2), 16},
		{"complete", hybridnet.Complete(6), 6},
		{"star", hybridnet.Star(7), 7},
		{"tree", hybridnet.BinaryTree(15), 15},
		{"ringofcliques", hybridnet.RingOfCliques(4, 4), 16},
		{"lollipop", hybridnet.Lollipop(4, 8), 12},
	}
	for _, c := range cases {
		if c.g.N() != c.n {
			t.Errorf("%s: n=%d, want %d", c.name, c.g.N(), c.n)
		}
		if !c.g.Connected() {
			t.Errorf("%s: not connected", c.name)
		}
	}
	rng := rand.New(rand.NewSource(1))
	if g := hybridnet.RandomGraph(30, 0.1, rng); !g.Connected() {
		t.Error("random graph disconnected")
	}
	if g := hybridnet.RandomWeights(hybridnet.Path(5), 9, rng); !g.IsWeighted() {
		t.Error("random weights produced unweighted graph")
	}
}

func TestNQFacade(t *testing.T) {
	g := hybridnet.Path(100)
	q, err := hybridnet.NQ(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	if q != 10 { // Θ(√k) on the path: exactly ceil over t·|B_t|≥k
		t.Fatalf("NQ=%d", q)
	}
	per, max, err := hybridnet.NQPerNode(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 100 || max != q {
		t.Fatal("NQPerNode inconsistent with NQ")
	}
}

func TestNetworkBasicsAndAudit(t *testing.T) {
	net := newNet(t, hybridnet.Grid2D(8))
	if net.N() != 64 || net.Cap() != 6 || net.Rounds() != 0 {
		t.Fatalf("n=%d cap=%d rounds=%d", net.N(), net.Cap(), net.Rounds())
	}
	if _, err := net.SSSP(0, 0.5); err != nil {
		t.Fatal(err)
	}
	if net.Rounds() == 0 {
		t.Fatal("no rounds recorded")
	}
	if !strings.Contains(net.Audit(), "TOTAL") {
		t.Fatal("audit missing total")
	}
	net.ResetRounds()
	if net.Rounds() != 0 {
		t.Fatal("reset failed")
	}
	if net.Raw() == nil {
		t.Fatal("Raw returned nil")
	}
}

func TestEndToEndPipeline(t *testing.T) {
	// One network, several algorithms in sequence — the memoized
	// clustering makes later phases cheaper, mirroring a real deployment
	// that sets up its infrastructure once.
	g := hybridnet.Grid2D(10)
	net := newNet(t, g)
	rng := rand.New(rand.NewSource(3))
	n := net.N()

	tokens := make([]int, n)
	for i := range tokens {
		tokens[i] = 1
	}
	dres, err := net.Disseminate(tokens)
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := net.Rounds()

	// Second broadcast on the same net: clustering is already in place,
	// so it must cost less.
	if _, err := net.Disseminate(tokens); err != nil {
		t.Fatal(err)
	}
	if second := net.Rounds() - afterFirst; second >= dres.Rounds {
		t.Fatalf("second broadcast (%d) not cheaper than first (%d) despite standing clustering", second, dres.Rounds)
	}

	// Routing and shortest paths on the same infrastructure.
	targets := hybridnet.SampleNodes(n, 3.0/float64(n), rng)
	if len(targets) == 0 {
		targets = []int{n - 1}
	}
	sources := make([]int, n/4)
	for i := range sources {
		sources[i] = i
	}
	rres, err := net.Route(hybridnet.RoutingSpec{
		Case:    hybridnet.ArbitrarySourcesRandomTargets,
		Sources: sources, Targets: targets, K: len(sources), L: 3,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rres.Pairs != int64(len(sources)*len(targets)) {
		t.Fatal("pairs mismatch")
	}

	dist, kres, err := net.KSSP(sources[:4], 0.5, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 4 {
		t.Fatal("kssp rows")
	}
	exact := g.Dijkstra(sources[0])
	for v := range exact {
		if dist[0][v] < exact[v] || float64(dist[0][v]) > kres.Stretch*float64(exact[v])+1e-6 {
			t.Fatalf("kssp stretch violated at %d", v)
		}
	}
}

func TestAggregateFacade(t *testing.T) {
	net := newNet(t, hybridnet.Cycle(40))
	values := make([][]int64, 40)
	for v := range values {
		values[v] = []int64{int64(v)}
	}
	sum := func(a, b int64) int64 { return a + b }
	got, _, err := net.Aggregate(1, values, sum)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 780 {
		t.Fatalf("sum=%d, want 780", got[0])
	}
}

func TestDisseminateVerifiedFacade(t *testing.T) {
	net := newNet(t, hybridnet.Grid2D(10))
	tokens := make([]int, net.N())
	tokens[0] = net.N()
	res, err := net.DisseminateVerified(tokens)
	if err != nil {
		t.Fatal(err)
	}
	for v, got := range res.PerNodeTokens {
		if got != net.N() {
			t.Fatalf("node %d got %d/%d tokens", v, got, net.N())
		}
	}
}

func TestBCCRoundFacade(t *testing.T) {
	net := newNet(t, hybridnet.Grid2D(8))
	res, err := net.BCCRound()
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 64 {
		t.Fatalf("BCC K=%d", res.K)
	}
}

func TestAPSPFacades(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := hybridnet.RandomWeights(hybridnet.Grid2D(7), 9, rng)
	for name, run := range map[string]func(*hybridnet.Network) error{
		"unweighted": func(n *hybridnet.Network) error { _, _, err := n.UnweightedAPSP(0.5, false); return err },
		"sparse":     func(n *hybridnet.Network) error { _, _, err := n.SparseAPSP(false); return err },
		"spanner":    func(n *hybridnet.Network) error { _, _, err := n.SpannerAPSP(0.5, false); return err },
		"skeleton":   func(n *hybridnet.Network) error { _, _, err := n.SkeletonAPSP(1, rng, false); return err },
	} {
		net := newNet(t, g)
		if err := run(net); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if net.Rounds() == 0 {
			t.Fatalf("%s: no rounds", name)
		}
	}
}

func TestKLSPFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := hybridnet.Path(80)
	net := newNet(t, g)
	dist, res, err := net.KLSP([]int{0, 1, 2, 3}, []int{79}, 0.5, hybridnet.KLSPArbitrarySources, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 1 || len(dist[0]) != 4 {
		t.Fatal("dist shape")
	}
	if res.Stretch != 1.5 {
		t.Fatalf("stretch=%v", res.Stretch)
	}
}

func TestApproxCutsFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := newNet(t, hybridnet.Grid2D(8))
	sp, res, err := net.ApproxCuts(0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.SparsifierEdges != len(sp.Edges) {
		t.Fatal("edges mismatch")
	}
}

func TestLowerBoundFacades(t *testing.T) {
	g := hybridnet.Path(400)
	d, err := hybridnet.DisseminationLowerBound(g, 400, 9, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	s, err := hybridnet.ShortestPathsLowerBound(g, 400, 9, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rounds <= 0 || s.Rounds <= 0 {
		t.Fatalf("bounds d=%v s=%v", d.Rounds, s.Rounds)
	}
	if s.Rounds < d.Rounds {
		t.Fatal("SP bound weaker than dissemination bound")
	}
}

func TestHybrid0VariantThroughFacade(t *testing.T) {
	net, err := hybridnet.NewNetwork(hybridnet.Grid2D(8), hybridnet.Config{
		Variant:        hybridnet.HYBRID0,
		TrackKnowledge: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 1 must run under enforced HYBRID₀ addressing.
	tokens := make([]int, net.N())
	tokens[0] = net.N()
	if _, err := net.Disseminate(tokens); err != nil {
		t.Fatalf("HYBRID0 dissemination with knowledge enforcement: %v", err)
	}
}
