package hybridnet_test

// Streaming tests (DESIGN.md §12): the differential contract (streamed
// rows re-ordered by canonical cell index are byte-identical to the
// static ?format=jsonl document, at any worker count, over both wire
// framings), exactly-once late-subscriber replay, finished and
// rehydrated-sweep replay, and the dedicated metrics series.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/hybridnet"
)

// collectStream subscribes to a sweep and returns every event through
// the terminal one.
func collectStream(t *testing.T, srv *hybridnet.Server, id string) []hybridnet.StreamEvent {
	t.Helper()
	var evs []hybridnet.StreamEvent
	err := srv.StreamCells(context.Background(), id, func(ev hybridnet.StreamEvent) error {
		evs = append(evs, ev)
		return nil
	})
	if err != nil {
		t.Fatalf("StreamCells(%s): %v", id, err)
	}
	if len(evs) == 0 {
		t.Fatalf("StreamCells(%s): no events", id)
	}
	return evs
}

// reassemble is the client-side inverse of resolution-order delivery:
// it checks every cell arrived exactly once, re-orders by canonical
// index, and concatenates the JSONL payloads.
func reassemble(t *testing.T, evs []hybridnet.StreamEvent) []byte {
	t.Helper()
	cells := make(map[int][]byte)
	total := -1
	for _, ev := range evs {
		if ev.Kind != hybridnet.StreamCell {
			continue
		}
		if _, dup := cells[ev.Index]; dup {
			t.Fatalf("cell %d delivered twice", ev.Index)
		}
		cells[ev.Index] = ev.JSONL
		total = ev.Total
	}
	if total >= 0 && len(cells) != total {
		t.Fatalf("got %d cells, want all %d", len(cells), total)
	}
	idx := make([]int, 0, len(cells))
	for i := range cells {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	var buf bytes.Buffer
	for _, i := range idx {
		buf.Write(cells[i])
	}
	return buf.Bytes()
}

// TestStreamStaticDifferential is the §12 acceptance contract: a cold
// sweep streamed while it runs delivers rows that, re-ordered by cell
// index, are byte-identical to the finished ?format=jsonl document —
// at one worker (sequential, in-order resolution) and at eight
// (concurrent, out-of-order resolution).
func TestStreamStaticDifferential(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			srv := newTestServer(t, hybridnet.ServerConfig{Workers: workers})
			st, err := srv.Submit(nqPathRequest())
			if err != nil {
				t.Fatal(err)
			}
			evs := collectStream(t, srv, st.ID)
			if last := evs[len(evs)-1]; last.Kind != hybridnet.StreamDone {
				t.Fatalf("terminal event %q, want %q", last.Kind, hybridnet.StreamDone)
			}
			static := results(t, srv, st.ID, "jsonl")
			if got := reassemble(t, evs); !bytes.Equal(got, static) {
				t.Errorf("streamed rows differ from static document:\nstream:\n%s\nstatic:\n%s", got, static)
			}
		})
	}
}

// sseEvent is one parsed text/event-stream event.
type sseEvent struct {
	name string
	id   string
	data []string
}

func parseSSE(t *testing.T, body string) []sseEvent {
	t.Helper()
	var evs []sseEvent
	for _, block := range strings.Split(body, "\n\n") {
		if block == "" {
			continue
		}
		var ev sseEvent
		for _, line := range strings.Split(block, "\n") {
			switch {
			case strings.HasPrefix(line, "event: "):
				ev.name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "id: "):
				ev.id = strings.TrimPrefix(line, "id: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = append(ev.data, strings.TrimPrefix(line, "data: "))
			default:
				t.Fatalf("unparseable SSE line %q", line)
			}
		}
		evs = append(evs, ev)
	}
	return evs
}

// TestStreamHTTPFramings drives both wire framings against a live
// sweep: the chunked-JSONL body must equal the static document
// byte for byte (the holdback buffer re-orders on the server), and the
// SSE cell events must reassemble to it by event id.
func TestStreamHTTPFramings(t *testing.T) {
	srv := newTestServer(t, hybridnet.ServerConfig{Workers: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	st, err := srv.Submit(nqPathRequest())
	if err != nil {
		t.Fatal(err)
	}

	jres, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/stream?format=jsonl")
	if err != nil {
		t.Fatal(err)
	}
	jbody, err := io.ReadAll(jres.Body)
	jres.Body.Close()
	if err != nil {
		t.Fatalf("reading jsonl stream: %v", err)
	}
	if ct := jres.Header.Get("Content-Type"); ct != "application/jsonl" {
		t.Errorf("jsonl stream Content-Type = %q", ct)
	}
	static := results(t, srv, st.ID, "jsonl")
	if !bytes.Equal(jbody, static) {
		t.Errorf("chunked jsonl body differs from static document:\nstream:\n%s\nstatic:\n%s", jbody, static)
	}

	// The sweep is finished now; the SSE stream replays it entirely.
	sres, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	sbody, err := io.ReadAll(sres.Body)
	sres.Body.Close()
	if err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	if ct := sres.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("SSE Content-Type = %q", ct)
	}
	events := parseSSE(t, string(sbody))
	rows := make(map[int][]string)
	sawDone := false
	for _, ev := range events {
		switch ev.name {
		case hybridnet.StreamCell:
			var idx int
			if _, err := fmt.Sscanf(ev.id, "%d", &idx); err != nil {
				t.Fatalf("cell event id %q: %v", ev.id, err)
			}
			if _, dup := rows[idx]; dup {
				t.Fatalf("cell %d delivered twice over SSE", idx)
			}
			rows[idx] = ev.data
		case hybridnet.StreamDone:
			sawDone = true
		case hybridnet.StreamStatus:
		default:
			t.Fatalf("unexpected SSE event %q", ev.name)
		}
	}
	if !sawDone {
		t.Fatal("SSE stream did not terminate with a done event")
	}
	idx := make([]int, 0, len(rows))
	for i := range rows {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	var buf bytes.Buffer
	for _, i := range idx {
		for _, line := range rows[i] {
			buf.WriteString(line)
			buf.WriteByte('\n')
		}
	}
	if !bytes.Equal(buf.Bytes(), static) {
		t.Errorf("SSE-reassembled rows differ from static document:\nstream:\n%s\nstatic:\n%s", buf.Bytes(), static)
	}
}

// TestStreamLateSubscriberReplay attaches after part of the sweep has
// already resolved: the subscriber must see every cell exactly once —
// the already-resolved prefix as replay, the rest live — with no gap
// or duplicate at the hand-off (the atomic snapshot+register in
// broadcaster.subscribe).
func TestStreamLateSubscriberReplay(t *testing.T) {
	srv := newTestServer(t, hybridnet.ServerConfig{Workers: 1})
	// All four theorem families: 16 cells, resolved one at a time.
	st, err := srv.Submit(hybridnet.SweepRequest{Scenario: "nq", N: 64})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, err := srv.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Cells >= 3 || cur.State != hybridnet.SweepRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep made no progress")
		}
		time.Sleep(time.Millisecond)
	}
	evs := collectStream(t, srv, st.ID)
	got := reassemble(t, evs) // enforces exactly-once and completeness
	if static := results(t, srv, st.ID, "jsonl"); !bytes.Equal(got, static) {
		t.Errorf("late-subscriber rows differ from static document")
	}
}

// TestStreamRehydratedSweepReplay streams a finished sweep (full
// replay from the live run's log), evicts it from the bounded
// registry, and streams it again: the rehydrated stream re-renders
// every cell from the result cache, byte-identical to the original.
func TestStreamRehydratedSweepReplay(t *testing.T) {
	srv := newTestServer(t, hybridnet.ServerConfig{Workers: 2, MaxSweeps: 1, CacheDir: t.TempDir()})
	st, err := srv.Submit(nqPathRequest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Wait(st.ID); err != nil {
		t.Fatal(err)
	}
	static := results(t, srv, st.ID, "jsonl")

	if got := reassemble(t, collectStream(t, srv, st.ID)); !bytes.Equal(got, static) {
		t.Errorf("finished-sweep replay differs from static document")
	}

	// A second sweep pushes the first out of the single-slot registry.
	other, err := srv.Submit(hybridnet.SweepRequest{Scenario: "nq", Families: []string{"cycle"}, N: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Wait(other.ID); err != nil {
		t.Fatal(err)
	}

	evs := collectStream(t, srv, st.ID)
	for _, ev := range evs {
		if ev.Kind == hybridnet.StreamCell && !ev.Cached {
			t.Errorf("rehydrated cell %d was re-simulated, want cache-served", ev.Index)
		}
	}
	if got := reassemble(t, evs); !bytes.Equal(got, static) {
		t.Errorf("rehydrated replay differs from static document")
	}
}

// TestStreamAndWaitMetricsSeries: the long-poll and stream endpoints
// record under their own latency series (so the plain endpoints' SLO
// ceilings stay meaningful) and the stream gauges/counters exist.
func TestStreamAndWaitMetricsSeries(t *testing.T) {
	srv := newTestServer(t, hybridnet.ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	st, err := srv.Submit(nqPathRequest())
	if err != nil {
		t.Fatal(err)
	}
	for _, url := range []string{
		ts.URL + "/v1/sweeps/" + st.ID + "?wait=1",
		ts.URL + "/v1/sweeps/" + st.ID + "/stream?format=jsonl",
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`hybridd_http_request_seconds_count{endpoint="status_wait"}`,
		`hybridd_http_request_seconds_count{endpoint="stream"}`,
		"hybridd_stream_subscribers",
		"hybridd_stream_events_total",
		"hybridd_stream_dropped_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The long-poll must not have been folded into the plain series:
	// exactly one plain status request (none were made) — assert the
	// wait call landed on status_wait by checking the plain series
	// count is absent-or-zero is brittle; instead assert the dedicated
	// series actually counted.
	if !strings.Contains(string(body), `hybridd_http_responses_total{code="200",endpoint="status_wait"} 1`) &&
		!strings.Contains(string(body), `hybridd_http_responses_total{endpoint="status_wait",code="200"} 1`) {
		t.Errorf("status_wait response not counted under its own series:\n%s", body)
	}
}
