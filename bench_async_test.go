package repro_test

// BenchmarkAsync* measures the asynchronous backend's scheduling fast
// paths (DESIGN.md §13) against the engine's forensic full-trace mode
// — the unoptimized behaviour the fast paths replaced:
//
//   - DisseminateDense: n-token dissemination on an expander, the
//     payload-heavy workload. The default trace folds a 64-bit
//     fingerprint per Set payload; full-trace mode folds every member
//     of every delivered set into the sha256 stream.
//   - BFSFaultFree: hop-distance flooding with small payloads. The
//     default transport answers fault-free sends analytically without
//     touching per-pair state; full-trace mode walks the per-attempt
//     machinery for every message.
//
// Both modes run the same event schedule and converge to identical
// outputs — the speedup column records the scheduler optimization, not
// a different computation. The committed BENCH_async.json (regenerate
// with cmd/benchjson -table bench_async) records the default mode
// against the baseline, produced by running this file with
// REPRO_BENCH_ASYNC_FULLTRACE=1.

import (
	"math/rand"
	"os"
	"testing"

	"repro/internal/async"
	"repro/internal/graph"
)

// asyncBenchOptions returns the engine options under measurement:
// full-trace mode when REPRO_BENCH_ASYNC_FULLTRACE=1 (the committed
// baseline column), the default fingerprint trace otherwise.
func asyncBenchOptions(seed int64) async.Options {
	return async.Options{
		Seed:      seed,
		FullTrace: os.Getenv("REPRO_BENCH_ASYNC_FULLTRACE") != "",
	}
}

// BenchmarkAsyncDisseminateDense: every node starts with one token, so
// k = n and every delivered gossip message carries an n-bit set — the
// payload-fold-dominated regime.
func BenchmarkAsyncDisseminateDense(b *testing.B) {
	g, err := graph.Build(graph.FamilyExpander, 768, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	tokensAt := make([]int, g.N())
	for v := range tokensAt {
		tokensAt[v] = 1
	}
	opt := asyncBenchOptions(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sets, _, err := async.Disseminate(g, tokensAt, opt)
		if err != nil {
			b.Fatal(err)
		}
		if sets[0].Count() != g.N() {
			b.Fatal("incomplete dissemination")
		}
	}
}

// BenchmarkAsyncBFSFaultFree: hop-distance flooding with word-sized
// payloads — the transport-dominated regime, where the analytic
// fault-free send path skips the per-pair attempt machinery.
func BenchmarkAsyncBFSFaultFree(b *testing.B) {
	g, err := graph.Build(graph.FamilyExpander, 2048, rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	opt := asyncBenchOptions(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist, _, err := async.BFS(g, 0, opt)
		if err != nil {
			b.Fatal(err)
		}
		if dist[g.N()-1] >= graph.Inf {
			b.Fatal("unreachable node")
		}
	}
}
