package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cliutil"
)

func TestRunDisseminate(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-algo", "disseminate", "-family", "path", "-n", "64", "-k", "16"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# disseminate on path", "rounds", "round audit:", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunEveryAlgorithm(t *testing.T) {
	for _, algo := range []string{"aggregate", "route", "bcc", "sssp", "kssp",
		"apsp-unweighted", "apsp-sparse", "apsp-spanner", "apsp-skeleton", "klsp", "cuts"} {
		var buf bytes.Buffer
		if err := run([]string{"-algo", algo, "-family", "grid2d", "-n", "49", "-k", "8"}, &buf); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(buf.String(), "rounds") {
			t.Fatalf("%s: no round report:\n%s", algo, buf.String())
		}
	}
}

func TestRunHybrid0Variant(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-algo", "disseminate", "-family", "cycle", "-n", "32", "-hybrid0"}, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-algo", "nosuch", "-n", "16"}, &buf); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// TestUsageShape pins the shared cliutil -h format every binary emits:
// the validator fails on any undocumented flag or a missing Examples
// block.
func TestUsageShape(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-h"}, &buf); err != nil {
		t.Fatalf("-h returned %v", err)
	}
	if err := cliutil.VerifyUsageText("hybridsim", buf.String()); err != nil {
		t.Errorf("usage text invalid: %v\n%s", err, buf.String())
	}
}
