// Command hybridsim runs one algorithm of the library on one graph
// family and prints the full per-phase round audit — the quickest way to
// inspect how a universal algorithm spends its rounds.
//
// Usage:
//
//	hybridsim -algo disseminate -family grid2d -n 1024 -k 1024
//	hybridsim -algo route -family path -n 512 -k 256 -l 4
//	hybridsim -algo sssp|kssp|apsp-unweighted|apsp-sparse|apsp-spanner|apsp-skeleton|cuts ...
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/hybridnet"
	"repro/internal/cliutil"
	"repro/internal/graph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hybridsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := cliutil.NewFlagSet(w, "hybridsim",
		"Run one algorithm of the library on one graph family and print the full per-phase round audit.",
		"hybridsim -algo disseminate -family grid2d -n 1024 -k 1024",
		"hybridsim -algo route -family path -n 512 -k 256 -l 4",
		"hybridsim -algo sssp -family expander -n 1024 -eps 0.25",
	)
	algo := fs.String("algo", "disseminate", "disseminate|aggregate|route|bcc|sssp|kssp|apsp-unweighted|apsp-sparse|apsp-spanner|apsp-skeleton|klsp|cuts")
	family := fs.String("family", "grid2d", "graph family")
	n := fs.Int("n", 1024, "approximate node count")
	k := fs.Int("k", 0, "workload (default n)")
	l := fs.Int("l", 4, "targets for routing/klsp")
	eps := fs.Float64("eps", 0.5, "approximation parameter")
	seed := fs.Int64("seed", 1, "random seed")
	hybrid0 := fs.Bool("hybrid0", false, "use the HYBRID0 variant")
	workers := fs.Int("workers", 0, "worker budget for the parallel graph kernels (0 = GOMAXPROCS); output is byte-identical at any setting")
	if err := fs.Parse(args); err != nil {
		if cliutil.HelpRequested(err) {
			return nil
		}
		return err
	}

	graph.SetMaxKernelWorkers(*workers)
	rng := rand.New(rand.NewSource(*seed))
	g, err := graph.Build(graph.Family(*family), *n, rng)
	if err != nil {
		return err
	}
	cfg := hybridnet.Config{Seed: *seed}
	if *hybrid0 {
		cfg.Variant = hybridnet.HYBRID0
	}
	net, err := hybridnet.NewNetwork(g, cfg)
	if err != nil {
		return err
	}
	nn := net.N()
	kk := *k
	if kk <= 0 {
		kk = nn
	}
	fmt.Fprintf(w, "# %s on %s: n=%d m=%d D=%d γ=%d\n", *algo, *family, nn, g.M(), g.Diameter(), net.Cap())

	switch *algo {
	case "disseminate":
		tokens := make([]int, nn)
		tokens[0] = kk
		res, err := net.Disseminate(tokens)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "k=%d NQ_k=%d clusters=%d → %d rounds\n", res.K, res.NQ, res.Clusters, res.Rounds)
	case "aggregate":
		_, res, err := net.Aggregate(kk, nil, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "k=%d NQ_k=%d → %d rounds\n", res.K, res.NQ, res.Rounds)
	case "bcc":
		res, err := net.BCCRound()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "one BCC round: NQ_n=%d → %d rounds\n", res.NQ, res.Rounds)
	case "route":
		sources := make([]int, min(kk, nn))
		for i := range sources {
			sources[i] = i
		}
		targets := hybridnet.SampleNodes(nn, float64(*l)/float64(nn), rng)
		if len(targets) == 0 {
			targets = []int{nn - 1}
		}
		res, err := net.Route(hybridnet.RoutingSpec{
			Case:    hybridnet.ArbitrarySourcesRandomTargets,
			Sources: sources, Targets: targets, K: kk, L: *l,
		}, rng)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "k=%d ℓ=%d pairs=%d NQ_k=%d → %d rounds (conditions met: %v)\n",
			res.K, res.L, res.Pairs, res.NQ, res.Rounds, res.ConditionsMet)
	case "sssp":
		if _, err := net.SSSP(0, *eps); err != nil {
			return err
		}
		fmt.Fprintf(w, "(1+%.2f)-SSSP → %d rounds\n", *eps, net.Rounds())
	case "kssp":
		sources := hybridnet.SampleNodes(nn, float64(kk)/float64(nn), rng)
		_, res, err := net.KSSP(sources, *eps, true, rng)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "k=%d regime=%q stretch=%.2f → %d rounds\n", len(sources), res.Regime, res.Stretch, res.Rounds)
	case "apsp-unweighted":
		_, res, err := net.UnweightedAPSP(*eps, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "NQ_n=%d stretch=%.2f → %d rounds\n", res.NQ, res.Stretch, res.Rounds)
	case "apsp-sparse":
		_, res, err := net.SparseAPSP(false)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "NQ=%d payload=%d edges → %d rounds (exact)\n", res.NQ, res.PayloadTokens, res.Rounds)
	case "apsp-spanner":
		_, res, err := net.SpannerAPSP(*eps, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "NQ=%d stretch=%.2f payload=%d → %d rounds\n", res.NQ, res.Stretch, res.PayloadTokens, res.Rounds)
	case "apsp-skeleton":
		_, res, err := net.SkeletonAPSP(1, rng, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "NQ=%d stretch=%.2f payload=%d → %d rounds\n", res.NQ, res.Stretch, res.PayloadTokens, res.Rounds)
	case "klsp":
		sources := make([]int, min(kk, nn))
		for i := range sources {
			sources[i] = i
		}
		targets := hybridnet.SampleNodes(nn, float64(*l)/float64(nn), rng)
		if len(targets) == 0 {
			targets = []int{nn - 1}
		}
		_, res, err := net.KLSP(sources, targets, *eps, hybridnet.KLSPArbitrarySources, rng)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "k=%d ℓ=%d NQ_k=%d stretch=%.2f → %d rounds\n", len(sources), len(targets), res.NQ, res.Stretch, res.Rounds)
	case "cuts":
		_, res, err := net.ApproxCuts(*eps, rng)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "sparsifier=%d edges NQ=%d → %d rounds\n", res.SparsifierEdges, res.NQ, res.Rounds)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	fmt.Fprintln(w, "\nround audit:")
	fmt.Fprint(w, net.Audit())
	return nil
}
