package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cliutil"
)

func TestRunSingleTableMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-table", "4", "-n", "64", "-families", "path"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table 4") || !strings.Contains(out, "| path |") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if strings.Contains(out, "Table 1") {
		t.Fatal("unselected table present")
	}
}

func TestRunFormatsAndParallel(t *testing.T) {
	render := func(extra ...string) string {
		var buf bytes.Buffer
		args := append([]string{"-nq", "-n", "64"}, extra...)
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if out := render("-format", "csv"); !strings.HasPrefix(out, "table,family") {
		t.Fatalf("csv:\n%s", out)
	}
	if out := render("-format", "jsonl"); !strings.Contains(out, `"table":"nqscaling"`) {
		t.Fatalf("jsonl:\n%s", out)
	}
	// -parallel must not change the bytes.
	if render("-parallel", "1") != render("-parallel", "8") {
		t.Fatal("output depends on -parallel")
	}
}

func TestRunFamiliesReachEverySection(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-figure", "1", "-n", "64", "-families", "expander"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "landscape on expander") {
		t.Fatalf("figure 1 ignored -families:\n%s", out)
	}
	if strings.Contains(out, "grid2d") {
		t.Fatalf("figure 1 kept default families:\n%s", out)
	}

	// The NQ section intersects with its theorem families: expander has
	// no prediction, so the table renders empty rather than lying.
	buf.Reset()
	if err := run([]string{"-nq", "-n", "64", "-families", "expander,cycle"}, &buf); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "| cycle |") || strings.Contains(out, "expander") {
		t.Fatalf("nq intersection wrong:\n%s", out)
	}
	buf.Reset()
	if err := run([]string{"-nq", "-n", "64", "-families", "expander"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "NQ_k scaling") || strings.Contains(buf.String(), "| expander |") {
		t.Fatalf("empty nq intersection:\n%s", buf.String())
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-h"}, &buf); err != nil {
		t.Fatalf("-h returned %v", err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-families", "nosuch"}, &buf); err == nil {
		t.Fatal("unknown family accepted")
	}
	if err := run([]string{"-table", "9", "-n", "64"}, &buf); err == nil {
		t.Fatal("unknown table accepted")
	}
	if err := run([]string{"-format", "xml", "-nq", "-n", "64"}, &buf); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestParseFamilies(t *testing.T) {
	fams, err := parseFamilies("path, grid2d,expander")
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 3 || string(fams[1]) != "grid2d" {
		t.Fatalf("fams=%v", fams)
	}
}

// TestUsageShape pins the shared cliutil -h format every binary emits:
// the validator fails on any undocumented flag or a missing Examples
// block.
func TestUsageShape(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-h"}, &buf); err != nil {
		t.Fatalf("-h returned %v", err)
	}
	if err := cliutil.VerifyUsageText("experiments", buf.String()); err != nil {
		t.Errorf("usage text invalid: %v\n%s", err, buf.String())
	}
}
