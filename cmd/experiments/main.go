// Command experiments regenerates every table and figure of the paper's
// results section by sweeping the registered scenarios of
// internal/experiments on a parallel runner.
//
// Usage:
//
//	experiments                        # everything at the default scale
//	experiments -table 1 -n 1024
//	experiments -figure 1
//	experiments -nq                    # Theorem 15/16 scaling tables
//	experiments -parallel 8            # worker-pool size (0 = GOMAXPROCS)
//	experiments -families path,grid2d  # restrict the family axis
//	experiments -format jsonl          # md (default), csv or jsonl
//
// Output is deterministic for a fixed seed regardless of -parallel.
package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/graph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := cliutil.NewFlagSet(w, "experiments",
		"Regenerate the paper's tables and figures by sweeping the registered scenarios on a parallel runner.",
		"experiments                        # everything at the default scale",
		"experiments -table 1 -n 1024",
		"experiments -figure 1",
		"experiments -nq                    # Theorem 15/16 scaling tables",
		"experiments -parallel 8            # worker-pool size (0 = GOMAXPROCS)",
		"experiments -families path,grid2d  # restrict the family axis",
		"experiments -format jsonl          # md (default), csv or jsonl",
	)
	table := fs.Int("table", 0, "regenerate one table (1-4); 0 = all")
	figure := fs.Int("figure", 0, "regenerate figure 1")
	nqOnly := fs.Bool("nq", false, "only the NQ scaling tables")
	n := fs.Int("n", 576, "approximate node count")
	seed := fs.Int64("seed", 1, "random seed")
	parallel := fs.Int("parallel", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
	families := fs.String("families", "", "comma-separated graph families (default: all; figure 1 defaults to path,grid2d and the NQ section intersects with its four theorem families)")
	format := fs.String("format", "md", "output format: md, csv or jsonl")
	if err := fs.Parse(args); err != nil {
		if cliutil.HelpRequested(err) {
			return nil
		}
		return err
	}

	cfg := experiments.ReportConfig{
		N:       *n,
		Seed:    *seed,
		Workers: *parallel,
		Format:  *format,
	}
	if *families != "" {
		fams, err := parseFamilies(*families)
		if err != nil {
			return err
		}
		cfg.Families = fams
	}
	switch {
	case *nqOnly:
		cfg.NQ = true
		cfg.Tables = []int{}
	case *table != 0:
		cfg.Tables = []int{*table}
	case *figure == 1:
		cfg.Figure1 = true
		cfg.Tables = []int{}
	}
	return experiments.WriteReport(w, cfg)
}

func parseFamilies(s string) ([]graph.Family, error) {
	known := make(map[graph.Family]bool)
	for _, f := range graph.Families() {
		known[f] = true
	}
	var out []graph.Family
	for _, part := range strings.Split(s, ",") {
		f := graph.Family(strings.TrimSpace(part))
		if !known[f] {
			return nil, fmt.Errorf("unknown family %q (known: %v)", f, graph.Families())
		}
		out = append(out, f)
	}
	return out, nil
}
