// Command experiments regenerates every table and figure of the paper's
// results section (DESIGN.md §4 maps each to its modules) as markdown.
//
// Usage:
//
//	experiments                  # everything at the default scale
//	experiments -table 1 -n 1024
//	experiments -figure 1
//	experiments -nq              # Theorem 15/16 scaling tables
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	table := flag.Int("table", 0, "regenerate one table (1-4); 0 = all")
	figure := flag.Int("figure", 0, "regenerate figure 1")
	nqOnly := flag.Bool("nq", false, "only the NQ scaling tables")
	n := flag.Int("n", 576, "approximate node count")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	cfg := experiments.ReportConfig{N: *n, Seed: *seed}
	switch {
	case *nqOnly:
		cfg.NQ = true
		cfg.Tables = []int{}
	case *table != 0:
		cfg.Tables = []int{*table}
	case *figure == 1:
		cfg.Figure1 = true
		cfg.Tables = []int{}
	}
	return experiments.WriteReport(os.Stdout, cfg)
}
