// Command hybridd serves the experiment harness over HTTP: a
// long-running sweep service (stdlib net/http only) over the scenario
// registry of internal/experiments, backed by the namespaced
// content-addressed artifact store of internal/artifact — result rows
// in one namespace, frozen CSR topologies in another — so repeated
// sweep cells are answered without re-simulation and each distinct
// graph instance is built once and shared across points, sweeps, and
// restarts (DESIGN.md §7, §9).
//
// Endpoints:
//
//	GET  /v1/scenarios            list the registered scenarios
//	POST /v1/sweeps               submit {"scenario","families","n","seed"}
//	GET  /v1/sweeps/{id}          poll a sweep's status
//	GET  /v1/sweeps/{id}/results  stream results (?format=md|csv|jsonl)
//	GET  /v1/sweeps/{id}/stream   live cell delivery while the sweep runs
//	                              (?format=sse|jsonl, DESIGN.md §12)
//	GET  /v1/cache/stats          artifact-store counters (per namespace,
//	                              disk tier, topology cache, pool depth)
//	GET  /metrics                 Prometheus text exposition
//
// Wrong-method requests on the /v1/* paths answer 405 with an Allow
// header and the JSON error shape. Sweeps are content-addressed:
// submitting an identical request returns the already-finished sweep,
// and `"fresh": true` re-executes through the cell cache instead.
// Admission control (DESIGN.md §11): -rate/-burst enable per-client
// token-bucket limiting of submissions and -max-active bounds
// concurrently running sweeps; over-limit submissions answer 429 with
// a Retry-After header instead of queueing. -trust-proxy keys the
// limiter on the first X-Forwarded-For hop (only enable behind a
// trusted reverse proxy — the header is client-forgeable).
// -disk-max-mb bounds the persistent tier, enforced by segment
// compaction. -stream-buffer sizes each stream subscriber's cell
// buffer; one that falls that far behind is disconnected.
//
// Cluster mode (DESIGN.md §15): -peers lists the full static
// membership (host:port, comma-separated) and -self names this
// process's own entry. Peers probe each other's liveness, assign every
// artifact a primary owner on a consistent-hash ring, fill local cache
// misses from the owner (hash-verified, with retry/backoff and a
// bounded hedge) and replicate local computes to it — degrading to
// local compute whenever a peer is down, slow, or corrupt, so a sweep
// never fails because of the cluster. The peers answer each other on
// GET /v1/peer/ping and GET/PUT /v1/peer/artifact/{ns}/{key}.
// SIGINT/SIGTERM shut down gracefully, draining in-flight sweeps.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"slices"
	"strings"
	"syscall"
	"time"

	"repro/hybridnet"
	"repro/internal/cliutil"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hybridd:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until ctx is cancelled (or the
// listener fails). It prints one "listening on ADDR" line to w before
// serving, so callers binding port 0 can discover the address.
func run(ctx context.Context, args []string, w io.Writer) error {
	fs := cliutil.NewFlagSet(w, "hybridd",
		"Serve the scenario-sweep harness over HTTP with a content-addressed result cache.",
		"hybridd -addr 127.0.0.1:8080",
		"hybridd -cache-dir /var/lib/hybridd   # persist results across restarts",
		"hybridd -peers a:8080,b:8080,c:8080 -self a:8080 -cache-dir /var/lib/hybridd   # one cluster member",
		`curl localhost:8080/v1/scenarios`,
		`curl -X POST localhost:8080/v1/sweeps -d '{"scenario":"table1","families":["path","grid2d"],"n":256}'`,
	)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	workers := fs.Int("workers", 0, "shared sweep worker-pool size (0 = GOMAXPROCS)")
	cacheMB := fs.Int("cache-mb", 64, "in-memory result-cache budget in MiB (negative disables caching)")
	cacheDir := fs.String("cache-dir", "", "directory for the persistent result-cache tier (empty = memory only)")
	diskMaxMB := fs.Int("disk-max-mb", 0, "disk-tier byte bound in MiB, GC-enforced (0 = unbounded; needs -cache-dir)")
	rate := fs.Float64("rate", 0, "per-client sweep submissions per second (0 = no rate limiting)")
	burst := fs.Int("burst", 0, "rate-limiter burst size (0 = max(1, 2×rate))")
	maxActive := fs.Int("max-active", 0, "concurrently running sweeps before submissions shed 429 (0 = 4×workers, negative = unbounded)")
	maxSweeps := fs.Int("max-sweeps", 0, "finished sweeps kept in memory; evicted ones re-serve from cache (0 = default, negative = unbounded)")
	trustProxy := fs.Bool("trust-proxy", false, "rate-limit by the first X-Forwarded-For hop (only behind a trusted reverse proxy)")
	streamBuffer := fs.Int("stream-buffer", 0, "buffered cells per stream subscriber before a slow consumer is dropped (0 = default)")
	peersFlag := fs.String("peers", "", "cluster mode: full static membership as comma-separated host:port entries (requires -self)")
	self := fs.String("self", "", "this process's own host:port entry in -peers (required with -peers)")
	probeInterval := fs.Duration("peer-probe-interval", time.Second, "cluster liveness probe period")
	peerTimeout := fs.Duration("peer-timeout", 2*time.Second, "per-attempt timeout of remote artifact fetches")
	if err := fs.Parse(args); err != nil {
		if cliutil.HelpRequested(err) {
			return nil
		}
		return err
	}

	// Validate the cluster flags before anything binds or spawns: a
	// misconfigured member must refuse to start, not half-join the ring.
	peers := splitPeers(*peersFlag)
	switch {
	case len(peers) > 0 && *self == "":
		return errors.New("-peers requires -self (this process's own host:port entry)")
	case *self != "" && len(peers) == 0:
		return errors.New("-self requires -peers (the full cluster membership)")
	case *self != "" && !slices.Contains(peers, *self):
		return fmt.Errorf("-self %q is not in the -peers list %v", *self, peers)
	}

	srv, err := hybridnet.NewServer(hybridnet.ServerConfig{
		Workers:      *workers,
		CacheBytes:   int64(*cacheMB) << 20,
		CacheDir:     *cacheDir,
		DiskBytes:    int64(*diskMaxMB) << 20,
		RatePerSec:   *rate,
		Burst:        *burst,
		MaxActive:    *maxActive,
		MaxSweeps:    *maxSweeps,
		TrustProxy:   *trustProxy,
		StreamBuffer: *streamBuffer,

		Peers:             peers,
		Self:              *self,
		PeerProbeInterval: *probeInterval,
		PeerFetchTimeout:  *peerTimeout,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		return err
	}
	fmt.Fprintf(w, "hybridd: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, let in-flight
	// requests finish, then drain the sweep pool and the cache.
	fmt.Fprintf(w, "hybridd: shutting down\n")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		srv.Close()
		return err
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		srv.Close()
		return err
	}
	return srv.Close()
}

// splitPeers parses the -peers flag: comma-separated host:port entries,
// whitespace-tolerant, empty segments dropped so a trailing comma is
// harmless.
func splitPeers(s string) []string {
	var peers []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}
