package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cliutil"
)

// startServer runs the binary's run() on an ephemeral port and returns
// the base URL plus a shutdown function that triggers the graceful
// path and waits for run to return.
func startServer(t *testing.T, args ...string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		err := run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), pw)
		pw.Close()
		done <- err
	}()
	scanner := bufio.NewScanner(pr)
	if !scanner.Scan() {
		cancel()
		t.Fatalf("server produced no output: %v", <-done)
	}
	line := scanner.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		cancel()
		t.Fatalf("unexpected first line %q", line)
	}
	url := "http://" + line[i+len(marker):]
	go func() { // drain the rest of the pipe so run never blocks on it
		io.Copy(io.Discard, pr)
	}()
	return url, func() error {
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(30 * time.Second):
			return fmt.Errorf("shutdown timed out")
		}
	}
}

// TestSmoke is the CI smoke contract: start the server, list the
// scenarios, run one sweep end to end, shut down gracefully.
func TestSmoke(t *testing.T) {
	url, shutdown := startServer(t)

	resp, err := http.Get(url + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"table1"`) {
		t.Fatalf("scenarios: code=%d body=%s", resp.StatusCode, body)
	}

	resp, err = http.Post(url+"/v1/sweeps", "application/json",
		strings.NewReader(`{"scenario":"nq","families":["path"],"n":64}`))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: code=%d %+v", resp.StatusCode, st)
	}

	deadline := time.Now().Add(60 * time.Second)
	for st.State == "running" {
		if time.Now().After(deadline) {
			t.Fatal("sweep did not finish in time")
		}
		r, err := http.Get(url + "/v1/sweeps/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	if st.State != "done" {
		t.Fatalf("sweep state %q: %s", st.State, st.Error)
	}

	r, err := http.Get(url + "/v1/sweeps/" + st.ID + "/results?format=md")
	if err != nil {
		t.Fatal(err)
	}
	md, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK || !strings.Contains(string(md), "| family |") {
		t.Fatalf("results: code=%d body=%s", r.StatusCode, md)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

// TestSmokeRepeatSweepIsCached asserts the serving-layer acceptance
// criterion over real HTTP: the same sweep submitted twice (second time
// fresh) returns byte-identical markdown with every cell of the rerun
// served by the result cache.
func TestSmokeRepeatSweepIsCached(t *testing.T) {
	url, shutdown := startServer(t)
	defer shutdown()

	submit := func(body string) (id string) {
		t.Helper()
		resp, err := http.Post(url+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return st.ID
	}
	wait := func(id string) (cells, cached int) {
		t.Helper()
		for {
			r, err := http.Get(url + "/v1/sweeps/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var st struct {
				State  string `json:"state"`
				Cells  int    `json:"cells"`
				Cached int    `json:"cached_cells"`
				Error  string `json:"error"`
			}
			if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			if st.State == "failed" {
				t.Fatalf("sweep failed: %s", st.Error)
			}
			if st.State == "done" {
				return st.Cells, st.Cached
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	get := func(id string) string {
		t.Helper()
		r, err := http.Get(url + "/v1/sweeps/" + id + "/results?format=md")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(r.Body)
		r.Body.Close()
		return string(body)
	}

	req := `{"scenario":"nq","families":["path","cycle"],"n":64}`
	id := submit(req)
	wait(id)
	cold := get(id)

	id2 := submit(`{"scenario":"nq","families":["path","cycle"],"n":64,"fresh":true}`)
	if id2 != id {
		t.Fatalf("content address changed: %s vs %s", id2, id)
	}
	cells, cached := wait(id2)
	if cells == 0 || float64(cached)/float64(cells) < 0.9 {
		t.Fatalf("rerun served %d/%d cells from cache, want ≥ 90%%", cached, cells)
	}
	if warm := get(id2); warm != cold {
		t.Fatalf("rerun results differ:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
}

// TestSmokeMetricsAndRateLimit: the hardening flags work end to end —
// an over-burst submission answers 429 with Retry-After, and /metrics
// serves the Prometheus text exposition counting the shed.
func TestSmokeMetricsAndRateLimit(t *testing.T) {
	url, shutdown := startServer(t, "-rate", "0.001", "-burst", "1")
	defer shutdown()

	resp, err := http.Post(url+"/v1/sweeps", "application/json",
		strings.NewReader(`{"scenario":"nq","families":["path"],"n":64}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: code=%d", resp.StatusCode)
	}
	resp, err = http.Post(url+"/v1/sweeps", "application/json",
		strings.NewReader(`{"scenario":"nq","families":["cycle"],"n":64}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst submit: code=%d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	r, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: code=%d", r.StatusCode)
	}
	for _, want := range []string{
		`hybridd_admission_shed_total{reason="rate"} 1`,
		"# TYPE hybridd_http_request_seconds histogram",
		"hybridd_pool_workers",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestUsage pins the shared cliutil -h shape.
func TestUsage(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), []string{"-h"}, &buf); err != nil {
		t.Fatalf("-h: %v", err)
	}
	out := buf.String()
	for _, flag := range []string{"-addr", "-peers", "-self", "-peer-probe-interval", "-peer-timeout"} {
		if !strings.Contains(out, flag) {
			t.Errorf("usage missing %s:\n%s", flag, out)
		}
	}
	if err := cliutil.VerifyUsageText("hybridd", out); err != nil {
		t.Errorf("usage text invalid: %v\n%s", err, out)
	}
}

// TestBadFlag: unknown flags fail run with an error.
func TestBadFlag(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), []string{"-nosuch"}, &buf); err == nil {
		t.Fatal("run accepted an unknown flag")
	}
}

// TestClusterFlagValidation: invalid -peers/-self combinations must
// fail run() before anything binds (main turns the error into one
// stderr line + exit 1), never half-start a misconfigured member.
func TestClusterFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"peers without self", []string{"-peers", "a:1,b:2"}, "-peers requires -self"},
		{"self without peers", []string{"-self", "a:1"}, "-self requires -peers"},
		{"self not in peers", []string{"-peers", "a:1,b:2", "-self", "c:3"}, "not in the -peers list"},
		{"peers without cache", []string{"-peers", "a:1,b:2", "-self", "a:1", "-cache-mb", "-1"}, "artifact cache"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf strings.Builder
			err := run(context.Background(), append([]string{"-addr", "127.0.0.1:0"}, tc.args...), &buf)
			if err == nil {
				t.Fatalf("run(%v) started despite invalid cluster flags", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			if strings.Contains(buf.String(), "listening on") {
				t.Errorf("server began listening before validation: %q", buf.String())
			}
		})
	}
}

// TestClusterSingleMemberSmoke: a one-member cluster (peers == {self})
// is valid and serves its peer endpoints; every key is self-owned so
// sweeps work exactly as in single-node mode.
func TestClusterSingleMemberSmoke(t *testing.T) {
	url, shutdown := startServer(t,
		"-peers", "127.0.0.1:19999", "-self", "127.0.0.1:19999",
		"-cache-dir", t.TempDir(), "-peer-probe-interval", "100ms")
	defer shutdown()

	resp, err := http.Get(url + "/v1/peer/ping")
	if err != nil {
		t.Fatal(err)
	}
	var ping struct {
		Self string `json:"self"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ping); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ping.Self != "127.0.0.1:19999" {
		t.Fatalf("ping: code=%d self=%q", resp.StatusCode, ping.Self)
	}

	r, err := http.Get(url + "/v1/cache/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Peers *struct {
			Self    string `json:"self"`
			Members []struct {
				Addr  string `json:"addr"`
				State string `json:"state"`
			} `json:"members"`
		} `json:"peers"`
	}
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.Peers == nil || st.Peers.Self != "127.0.0.1:19999" || len(st.Peers.Members) != 1 {
		t.Fatalf("cache stats peers section = %+v", st.Peers)
	}
}
