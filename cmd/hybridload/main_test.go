package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"repro/hybridnet"
	"repro/internal/cliutil"
)

// startBackend hosts a real sweep server over httptest for the load
// generator to drive.
func startBackend(t *testing.T, cfg hybridnet.ServerConfig) *httptest.Server {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	srv, err := hybridnet.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts
}

// TestLoadTwoWaves: the end-to-end load run — two waves over a small
// mix, warm wave cache-served and byte-identical, bench lines emitted
// in benchjson's grammar.
func TestLoadTwoWaves(t *testing.T) {
	ts := startBackend(t, hybridnet.ServerConfig{})
	var out strings.Builder
	err := run(context.Background(), []string{
		"-addr", ts.URL,
		"-mix", "nq:path:64,nq:cycle:64",
		"-waves", "2", "-clients", "2", "-bench",
	}, &out)
	if err != nil {
		t.Fatalf("load run failed: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"wave 1:", "wave 2:", "metrics scrape"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	benchLine := regexp.MustCompile(`(?m)^Benchmark\S+ 1 \d+ ns/op$`)
	if got := len(benchLine.FindAllString(text, -1)); got != 4 {
		t.Errorf("want 4 bench lines, got %d:\n%s", got, text)
	}
	// The warm wave resolves every cell from the result cache.
	waveLines := regexp.MustCompile(`(?m)^wave 2: .*cached (\d+)/(\d+) cells$`).FindStringSubmatch(text)
	if waveLines == nil || waveLines[1] != waveLines[2] {
		t.Errorf("warm wave not fully cache-served:\n%s", text)
	}
}

// TestLoadHonors429: against a rate-limited server, the generator
// backs off per Retry-After and completes the mix anyway.
func TestLoadHonors429(t *testing.T) {
	ts := startBackend(t, hybridnet.ServerConfig{RatePerSec: 20, Burst: 1})
	var out strings.Builder
	err := run(context.Background(), []string{
		"-addr", ts.URL,
		"-mix", "nq:path:64,nq:cycle:64,nq:grid2d:64",
		"-waves", "1", "-clients", "3",
	}, &out)
	if err != nil {
		t.Fatalf("rate-limited load run failed: %v\n%s", err, out.String())
	}
	if !regexp.MustCompile(`429 shed-and-retried submissions: [1-9]`).MatchString(out.String()) {
		t.Logf("no shed observed (timing-dependent, not fatal):\n%s", out.String())
	}
}

// deadAddr reserves an ephemeral port and immediately frees it, so
// dialing it gets connection-refused — a peer that is down.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestLoadMultiTargetFailover: with -peers listing two live backends
// and one dead address, every job still completes (failing over off the
// dead target with backoff) and the cross-wave digest ledger holds even
// though waves land on different backends — deterministic sweeps must
// be byte-identical across peers.
func TestLoadMultiTargetFailover(t *testing.T) {
	ts1 := startBackend(t, hybridnet.ServerConfig{})
	ts2 := startBackend(t, hybridnet.ServerConfig{})
	dead := deadAddr(t)
	var out strings.Builder
	err := run(context.Background(), []string{
		"-peers", strings.Join([]string{ts1.URL, dead, ts2.URL}, ","),
		"-mix", "nq:path:64,nq:cycle:64",
		"-waves", "2", "-clients", "2",
	}, &out)
	if err != nil {
		t.Fatalf("multi-target load run failed: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "warning: http://"+dead+" unreachable") {
		t.Errorf("missing unreachable warning for the dead target:\n%s", text)
	}
	m := regexp.MustCompile(`(?m)^cross-target failovers: (\d+)$`).FindStringSubmatch(text)
	if m == nil || m[1] == "0" {
		t.Errorf("round-robin over a dead target must record failovers, got %v:\n%s", m, text)
	}
	for _, want := range []string{"wave 1:", "wave 2:"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

// TestLoadAllTargetsDead: the startup probe fails the run when no
// target answers, before any load is generated.
func TestLoadAllTargetsDead(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{
		"-peers", deadAddr(t) + "," + deadAddr(t),
		"-waves", "1",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "no hybridd reachable") {
		t.Fatalf("err = %v, want a no-target-reachable error", err)
	}
}

// TestRetryable pins the failover classification: transport-level
// failures fail over, application-level errors do not.
func TestRetryable(t *testing.T) {
	var c loadClient
	c.hc = httptest.NewServer(nil).Client()
	c.targets = []string{"http://" + deadAddr(t)}
	_, err := c.submit(context.Background(), c.targets[0], job{scenario: "nq", family: "path", n: 64}, false)
	if err == nil || !retryable(err) {
		t.Errorf("connection refused: retryable(%v) = false, want true", err)
	}
	for _, appErr := range []error{
		fmt.Errorf("sweep x failed: boom"),
		fmt.Errorf("wave 2: sweep y results drifted"),
	} {
		if retryable(appErr) {
			t.Errorf("retryable(%v) = true, want false", appErr)
		}
	}
	if !retryable(fmt.Errorf("wait x: %w", io.ErrUnexpectedEOF)) {
		t.Error("a truncated body must be retryable")
	}
}

// TestParseMix pins the mix grammar.
func TestParseMix(t *testing.T) {
	jobs, err := parseMix("nq:path:64, table1:grid2d:128")
	if err != nil || len(jobs) != 2 || jobs[1].scenario != "table1" || jobs[1].n != 128 {
		t.Fatalf("parseMix = %+v, %v", jobs, err)
	}
	for _, bad := range []string{"", "nq:path", "nq:path:zero", "nq:path:-1"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

// TestUsage pins the shared cliutil -h shape.
func TestUsage(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), []string{"-h"}, &buf); err != nil {
		t.Fatalf("-h: %v", err)
	}
	for _, want := range []string{"-mix", "-waves", "-peers"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("usage missing %q:\n%s", want, buf.String())
		}
	}
	if err := cliutil.VerifyUsageText("hybridload", buf.String()); err != nil {
		t.Errorf("usage text invalid: %v\n%s", err, buf.String())
	}
}

// TestBadFlags: unknown flags and invalid mixes fail run.
func TestBadFlags(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), []string{"-nosuch"}, &buf); err == nil {
		t.Fatal("run accepted an unknown flag")
	}
	if err := run(context.Background(), []string{"-mix", "garbage"}, &buf); err == nil {
		t.Fatal("run accepted a bad mix")
	}
	if err := run(context.Background(), []string{"-waves", "0"}, &buf); err == nil {
		t.Fatal("run accepted zero waves")
	}
}
