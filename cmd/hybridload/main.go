// Command hybridload replays realistic sweep traffic against a running
// hybridd instance — or, with -peers, a whole hybridd cluster — and
// reports end-to-end latency, cache efficiency, and admission behavior
// — the load proof for the hardening layer (DESIGN.md §11, §15).
//
// A mix of "scenario:family:n" jobs is replayed in waves by a pool of
// concurrent clients: each job is submitted (429 responses honor the
// Retry-After hint and retry), long-polled to completion via
// GET /v1/sweeps/{id}?wait=1, and its results streamed and digested.
// Because sweeps are content-addressed and deterministic, every wave
// after the first must reproduce wave 1's result bytes exactly —
// hybridload fails if any digest drifts, so a load run is also a
// correctness check of the cache and rehydration paths.
//
// With -stream each job additionally consumes the sweep's live SSE
// stream (GET /v1/sweeps/{id}/stream) while it runs, reassembles the
// streamed rows in canonical cell order, and requires their sha256 to
// equal the static ?format=jsonl document's — the cross-mode
// byte-identity contract of DESIGN.md §12 — while measuring the
// latency to the first streamed event.
//
// With -peers the mix is spread round-robin over several hybridd
// endpoints (the wave number rotates the assignment, so warm waves land
// on different peers than the cold wave did). A job whose target fails
// mid-flight — connection refused, reset, truncated body — fails over
// to the next target with capped backoff and restarts from submission;
// since the digest ledger is keyed by sweep id, a sweep computed on one
// peer and re-served by another must be byte-identical, making a
// cluster load run a cross-peer consistency check too.
//
//	hybridload -addr 127.0.0.1:8080 -waves 3 -clients 8
//	hybridload -peers 127.0.0.1:8080,127.0.0.1:8081,127.0.0.1:8082 -waves 3
//	hybridload -addr 127.0.0.1:8080 -stream -bench | benchjson -table bench_http
//
// With -bench the summary is followed by `go test -bench`-style lines
// (BenchmarkHTTPSweepCold, BenchmarkHTTPSweepWarm,
// BenchmarkHTTPResultsWarm, BenchmarkHTTPMetricsScrape, and with
// -stream BenchmarkHTTPStreamFirstEvent) that cmd/benchjson turns into
// the committed BENCH_http.json artifact.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/sse"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hybridload:", err)
		os.Exit(1)
	}
}

// job is one entry of the replay mix.
type job struct {
	scenario string
	family   string
	n        int
}

func (j job) String() string { return fmt.Sprintf("%s:%s:%d", j.scenario, j.family, j.n) }

// parseMix splits a comma-separated list of scenario:family:n triples.
func parseMix(s string) ([]job, error) {
	var jobs []job
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("mix entry %q: want scenario:family:n", part)
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("mix entry %q: bad n", part)
		}
		jobs = append(jobs, job{scenario: fields[0], family: fields[1], n: n})
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	return jobs, nil
}

// sweepStatus mirrors the service's status document.
type sweepStatus struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cells  int    `json:"cells"`
	Cached int    `json:"cached_cells"`
	Error  string `json:"error"`
}

// loadClient drives one or more hybridd endpoints: a single -addr, or
// the -peers membership with round-robin assignment and failover.
type loadClient struct {
	targets []string // base URLs, ≥ 1
	hc      *http.Client
	timeout time.Duration
	// shedWait caps how long a Retry-After hint is honored per attempt,
	// so a aggressively limited run fails fast instead of stalling.
	shedWait time.Duration

	mu        sync.Mutex
	sheds     int // 429 responses that were retried
	failovers int // jobs restarted on another target after a transport failure
}

// target maps an assignment index onto the target ring.
func (c *loadClient) target(i int) string { return c.targets[i%len(c.targets)] }

// retryable reports whether a job error is a transport-level failure
// worth failing over to another target — the peer died, refused, or
// truncated mid-body — as opposed to an application error (failed
// sweep, digest drift) that every peer would reproduce.
func retryable(err error) bool {
	var uerr *url.Error
	var nerr net.Error
	var jerr *json.SyntaxError
	return errors.As(err, &uerr) || errors.As(err, &nerr) || errors.As(err, &jerr) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// failoverBackoff is the capped linear backoff between a job's
// failover attempts.
func failoverBackoff(attempt int) time.Duration {
	return min(time.Duration(attempt+1)*200*time.Millisecond, time.Second)
}

// submit posts one job, honoring 429 Retry-After hints with bounded
// retries, and returns the sweep id. fresh forces re-execution through
// the cell cache (warm waves measure cache-served sweeps, not the
// no-op reuse of an already-finished one).
func (c *loadClient) submit(ctx context.Context, base string, j job, fresh bool) (string, error) {
	body := fmt.Sprintf(`{"scenario":%q,"families":[%q],"n":%d,"fresh":%v}`, j.scenario, j.family, j.n, fresh)
	for attempt := 0; attempt < 10; attempt++ {
		req, err := http.NewRequestWithContext(ctx, "POST", base+"/v1/sweeps", strings.NewReader(body))
		if err != nil {
			return "", err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.hc.Do(req)
		if err != nil {
			return "", err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			retry := time.Second
			if s := resp.Header.Get("Retry-After"); s != "" {
				if secs, err := strconv.Atoi(s); err == nil {
					retry = time.Duration(secs) * time.Second
				}
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if retry > c.shedWait {
				retry = c.shedWait
			}
			c.mu.Lock()
			c.sheds++
			c.mu.Unlock()
			select {
			case <-time.After(retry):
			case <-ctx.Done():
				return "", ctx.Err()
			}
			continue
		}
		var st sweepStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return "", fmt.Errorf("submit %s: %w", j, err)
		}
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("submit %s: HTTP %d: %s", j, resp.StatusCode, st.Error)
		}
		return st.ID, nil
	}
	return "", fmt.Errorf("submit %s: shed %d times in a row, giving up", j, 10)
}

// wait long-polls the status endpoint until the sweep leaves the
// running state or the configured timeout elapses.
func (c *loadClient) wait(ctx context.Context, base, id string) (sweepStatus, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	for {
		req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/sweeps/"+id+"?wait=1", nil)
		if err != nil {
			return sweepStatus{}, err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return sweepStatus{}, fmt.Errorf("wait %s: %w", id, err)
		}
		var st sweepStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return sweepStatus{}, fmt.Errorf("wait %s: %w", id, err)
		}
		if resp.StatusCode != http.StatusOK {
			return sweepStatus{}, fmt.Errorf("wait %s: HTTP %d: %s", id, resp.StatusCode, st.Error)
		}
		switch st.State {
		case "done":
			return st, nil
		case "failed":
			return st, fmt.Errorf("sweep %s failed: %s", id, st.Error)
		}
		// The long-poll only returns a running state when the server
		// saw our connection drop; just poll again until the timeout.
	}
}

// fetch streams the sweep's results and returns their digest.
func (c *loadClient) fetch(ctx context.Context, base, id, format string) ([32]byte, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/sweeps/"+id+"/results?format="+format, nil)
	if err != nil {
		return [32]byte{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return [32]byte{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return [32]byte{}, fmt.Errorf("results %s: HTTP %d: %s", id, resp.StatusCode, body)
	}
	h := sha256.New()
	if _, err := io.Copy(h, resp.Body); err != nil {
		return [32]byte{}, err
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum, nil
}

// streamResult is one SSE consumption's outcome: the sha256 of the
// streamed rows reassembled in canonical cell order, the latency to
// the first event, and the cell-event count.
type streamResult struct {
	digest     [32]byte
	firstEvent time.Duration
	cells      int
}

// stream consumes the sweep's live SSE stream to completion: each
// "cell" event's data lines are its JSONL rows and its id the
// canonical cell index, so re-ordering by id and concatenating
// reproduces the static ?format=jsonl document. Duplicate cell ids
// (broken exactly-once replay) and non-"done" terminals are errors.
func (c *loadClient) stream(ctx context.Context, base, id string) (streamResult, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/sweeps/"+id+"/stream?format=sse", nil)
	if err != nil {
		return streamResult{}, err
	}
	start := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		return streamResult{}, fmt.Errorf("stream %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return streamResult{}, fmt.Errorf("stream %s: HTTP %d: %s", id, resp.StatusCode, body)
	}
	var res streamResult
	rows := make(map[int][]string)
	terminal := ""
	err = sse.Decode(resp.Body, func(ev sse.Event) error {
		if res.firstEvent == 0 {
			res.firstEvent = time.Since(start)
		}
		switch ev.Name {
		case "cell":
			if _, dup := rows[ev.ID]; dup {
				return fmt.Errorf("stream %s: cell %d delivered twice", id, ev.ID)
			}
			rows[ev.ID] = ev.Data
			res.cells++
		case "done", "failed", "dropped":
			terminal = ev.Name
		}
		return nil
	})
	if err != nil {
		return streamResult{}, fmt.Errorf("stream %s: %w", id, err)
	}
	if terminal != "done" {
		return streamResult{}, fmt.Errorf("stream %s: terminal event %q, want done", id, terminal)
	}
	idx := make([]int, 0, len(rows))
	for i := range rows {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	h := sha256.New()
	for _, i := range idx {
		for _, line := range rows[i] {
			io.WriteString(h, line)
			io.WriteString(h, "\n")
		}
	}
	copy(res.digest[:], h.Sum(nil))
	return res, nil
}

// sample is one job's end-to-end measurement within a wave.
type sample struct {
	job      job
	id       string
	total    time.Duration // submit → results fetched
	results  time.Duration // the results fetch alone
	cached   int
	cells    int
	digest   [32]byte
	stream   streamResult // zero unless -stream
	statusOK bool
}

// runJob drives one job end to end against one target: submit, wait,
// fetch (and with stream set, consume the live SSE stream and verify
// it against the static jsonl document).
func (c *loadClient) runJob(ctx context.Context, base string, j job, format string, fresh, stream bool) (sample, error) {
	start := time.Now()
	id, err := c.submit(ctx, base, j, fresh)
	if err != nil {
		return sample{}, err
	}
	var sres streamResult
	var serr error
	sdone := make(chan struct{})
	if stream {
		go func() {
			defer close(sdone)
			sres, serr = c.stream(ctx, base, id)
		}()
	} else {
		close(sdone)
	}
	st, err := c.wait(ctx, base, id)
	if err != nil {
		return sample{}, err
	}
	fetchStart := time.Now()
	digest, err := c.fetch(ctx, base, id, format)
	if err != nil {
		return sample{}, err
	}
	<-sdone
	if serr != nil {
		return sample{}, serr
	}
	if stream {
		staticJSONL, err := c.fetch(ctx, base, id, "jsonl")
		if err != nil {
			return sample{}, err
		}
		if sres.digest != staticJSONL {
			return sample{}, fmt.Errorf("sweep %s (%s): streamed rows differ from the static jsonl document — the §12 byte-identity contract is broken", id, j)
		}
	}
	return sample{
		job: j, id: id,
		total:   time.Since(start),
		results: time.Since(fetchStart),
		cached:  st.Cached, cells: st.Cells,
		digest: digest, stream: sres, statusOK: true,
	}, nil
}

// runWave replays the whole mix once with the configured concurrency.
// Each job starts on target (jobIndex + wave - 1) — round-robin, and
// the rotation by wave means warm waves hit different peers than the
// cold wave, turning the digest ledger into a cross-peer byte-identity
// check. A transport-level failure fails the job over to the next
// target with capped backoff, restarting from submission; the attempt
// budget is two full laps of the ring, so a run survives dead peers
// but not a fully dead cluster.
func runWave(ctx context.Context, c *loadClient, jobs []job, wave, clients int, format string, fresh, stream bool) ([]sample, error) {
	samples := make([]sample, len(jobs))
	errs := make([]error, len(jobs))
	sem := make(chan struct{}, clients)
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			budget := 2 * len(c.targets)
			for attempt := 0; attempt < budget; attempt++ {
				s, err := c.runJob(ctx, c.target(i+wave-1+attempt), j, format, fresh, stream)
				if err == nil {
					samples[i], errs[i] = s, nil
					return
				}
				errs[i] = fmt.Errorf("%s: %w", j, err)
				if ctx.Err() != nil || !retryable(err) || attempt == budget-1 {
					return
				}
				c.mu.Lock()
				c.failovers++
				c.mu.Unlock()
				select {
				case <-time.After(failoverBackoff(attempt)):
				case <-ctx.Done():
					return
				}
			}
		}(i, j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return samples, nil
}

// quantile returns the q-th latency quantile of the samples.
func quantile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func mean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := cliutil.NewFlagSet(w, "hybridload",
		"Replay a realistic sweep mix against a running hybridd and verify cross-wave byte-identity.",
		"hybridload -addr 127.0.0.1:8080 -waves 3 -clients 8",
		"hybridload -peers 127.0.0.1:8080,127.0.0.1:8081,127.0.0.1:8082 -waves 3   # round-robin a cluster",
		"hybridload -addr 127.0.0.1:8080 -stream   # also consume each sweep's live SSE stream",
		"hybridload -addr 127.0.0.1:8080 -bench | benchjson -table bench_http -baseline BENCH_http.json",
	)
	addr := fs.String("addr", "127.0.0.1:8080", "hybridd address (host:port or full URL)")
	peersFlag := fs.String("peers", "", "comma-separated hybridd cluster addresses; jobs round-robin over them with failover (overrides -addr)")
	mixFlag := fs.String("mix", "nq:path:64,nq:cycle:64,nq:grid2d:64,nq:grid3d:64", "comma-separated scenario:family:n jobs replayed each wave")
	waves := fs.Int("waves", 2, "replay rounds; wave 1 is the cold run, later waves must be cache-served and byte-identical")
	clients := fs.Int("clients", 4, "concurrent clients replaying the mix")
	format := fs.String("format", "md", "results format fetched and digested (md, csv, or jsonl)")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-sweep completion timeout")
	shedWait := fs.Duration("shed-wait", 2*time.Second, "cap on how long one 429 Retry-After hint is honored")
	stream := fs.Bool("stream", false, "consume each sweep's SSE stream live and verify it against the static jsonl document")
	bench := fs.Bool("bench", false, "append go-test-bench-style lines for benchjson")
	if err := fs.Parse(args); err != nil {
		if cliutil.HelpRequested(err) {
			return nil
		}
		return err
	}
	if *waves < 1 || *clients < 1 {
		return fmt.Errorf("-waves and -clients must be positive")
	}
	jobs, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}
	raw := []string{*addr}
	if *peersFlag != "" {
		raw = nil
		for _, p := range strings.Split(*peersFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				raw = append(raw, p)
			}
		}
		if len(raw) == 0 {
			return fmt.Errorf("-peers is set but holds no addresses")
		}
	}
	targets := make([]string, len(raw))
	for i, a := range raw {
		base := a
		if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
			base = "http://" + base
		}
		targets[i] = strings.TrimRight(base, "/")
	}
	c := &loadClient{targets: targets, hc: &http.Client{}, timeout: *timeout, shedWait: *shedWait}

	// Probe before loading: at least one target must answer. Dead ones
	// are reported but tolerated — surviving them is what failover is
	// for.
	reachable := 0
	for _, base := range targets {
		resp, err := c.hc.Get(base + "/v1/scenarios")
		if err != nil {
			fmt.Fprintf(w, "warning: %s unreachable: %v\n", base, err)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		reachable++
	}
	if reachable == 0 {
		return fmt.Errorf("no hybridd reachable at any of %s", strings.Join(targets, ", "))
	}

	digests := make(map[string][32]byte) // sweep id → wave-1 digest
	var coldTotals, warmTotals, warmResults, firstEvents []time.Duration
	for wave := 1; wave <= *waves; wave++ {
		start := time.Now()
		samples, err := runWave(ctx, c, jobs, wave, *clients, *format, wave > 1, *stream)
		if err != nil {
			return fmt.Errorf("wave %d: %w", wave, err)
		}
		var totals []time.Duration
		cached, cells := 0, 0
		for _, s := range samples {
			totals = append(totals, s.total)
			cached += s.cached
			cells += s.cells
			if *stream {
				firstEvents = append(firstEvents, s.stream.firstEvent)
			}
			if prev, ok := digests[s.id]; ok {
				if prev != s.digest {
					return fmt.Errorf("wave %d: sweep %s (%s) results drifted from wave 1 — cache or rehydration is not byte-stable", wave, s.id, s.job)
				}
			} else {
				digests[s.id] = s.digest
			}
			if wave > 1 {
				warmTotals = append(warmTotals, s.total)
				warmResults = append(warmResults, s.results)
			} else {
				coldTotals = append(coldTotals, s.total)
			}
		}
		fmt.Fprintf(w, "wave %d: %d sweeps in %v  p50=%v p99=%v  cached %d/%d cells\n",
			wave, len(samples), time.Since(start).Round(time.Millisecond),
			quantile(totals, 0.50).Round(time.Millisecond), quantile(totals, 0.99).Round(time.Millisecond),
			cached, cells)
	}
	c.mu.Lock()
	sheds, failovers := c.sheds, c.failovers
	c.mu.Unlock()
	fmt.Fprintf(w, "429 shed-and-retried submissions: %d\n", sheds)
	if len(targets) > 1 {
		fmt.Fprintf(w, "cross-target failovers: %d\n", failovers)
	}
	if *stream {
		fmt.Fprintf(w, "stream first-event p50: %v (all %d streams byte-identical to static jsonl)\n",
			quantile(firstEvents, 0.5).Round(time.Microsecond), len(firstEvents))
	}

	// Scrape /metrics a few times for the exposition-latency benchmark
	// (and as a smoke check that the endpoint serves under load). Each
	// scrape walks the targets in order and uses the first that answers.
	var scrapes []time.Duration
	for i := 0; i < 5; i++ {
		t0 := time.Now()
		var lastErr error
		ok := false
		for _, base := range targets {
			resp, err := c.hc.Get(base + "/metrics")
			if err != nil {
				lastErr = err
				continue
			}
			n, _ := io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || n == 0 {
				lastErr = fmt.Errorf("/metrics: HTTP %d, %d bytes", resp.StatusCode, n)
				continue
			}
			ok = true
			break
		}
		if !ok {
			return fmt.Errorf("scraping /metrics on every target failed, last: %w", lastErr)
		}
		scrapes = append(scrapes, time.Since(t0))
	}
	fmt.Fprintf(w, "metrics scrape p50: %v\n", quantile(scrapes, 0.5).Round(time.Microsecond))

	if *bench {
		// One aggregated line per phase, in the exact shape benchjson's
		// parser consumes (`Benchmark\S+ N <ns> ns/op`).
		fmt.Fprintf(w, "BenchmarkHTTPSweepCold 1 %d ns/op\n", mean(coldTotals).Nanoseconds())
		if len(warmTotals) > 0 {
			fmt.Fprintf(w, "BenchmarkHTTPSweepWarm 1 %d ns/op\n", mean(warmTotals).Nanoseconds())
			fmt.Fprintf(w, "BenchmarkHTTPResultsWarm 1 %d ns/op\n", mean(warmResults).Nanoseconds())
		}
		fmt.Fprintf(w, "BenchmarkHTTPMetricsScrape 1 %d ns/op\n", quantile(scrapes, 0.5).Nanoseconds())
		if *stream && len(firstEvents) > 0 {
			fmt.Fprintf(w, "BenchmarkHTTPStreamFirstEvent 1 %d ns/op\n", quantile(firstEvents, 0.5).Nanoseconds())
		}
	}
	return nil
}
