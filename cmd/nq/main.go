// Command nq computes the neighborhood quality NQ_k (Definition 3.1) on
// the built-in graph families and prints the Theorem 15/16 scaling tables.
//
// Usage:
//
//	nq [-n 1024] [-k 16,64,256,1024] [-family grid2d]
//
// Without -family it sweeps paths, cycles and 2-/3-d grids (the
// Appendix B families) and reports measured NQ_k against the predicted
// Θ(k^{1/(d+1)}).
package main

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/nq"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nq:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := cliutil.NewFlagSet(w, "nq",
		"Compute the neighborhood quality NQ_k (Definition 3.1) and the Theorem 15/16 scaling tables.",
		"nq -n 1024 -k 16,64,256,1024       # the Appendix B family sweep",
		"nq -family grid2d -n 4096          # one family, measured NQ_k per k",
	)
	n := fs.Int("n", 1024, "approximate number of nodes")
	ks := fs.String("k", "16,64,256,1024", "comma-separated workloads k")
	family := fs.String("family", "", "single family (default: Theorem 15/16 sweep)")
	workers := fs.Int("workers", 0, "worker budget for the parallel graph kernels (0 = GOMAXPROCS); output is byte-identical at any setting")
	if err := fs.Parse(args); err != nil {
		if cliutil.HelpRequested(err) {
			return nil
		}
		return err
	}

	graph.SetMaxKernelWorkers(*workers)
	kList, err := parseInts(*ks)
	if err != nil {
		return err
	}
	if *family == "" {
		rows, err := experiments.NQScaling(*n, kList)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "# NQ_k scaling (Theorems 15/16): NQ_k = Θ(k^{1/(d+1)}) on d-dimensional grids")
		fmt.Fprint(w, experiments.FormatNQScaling(rows))
		return nil
	}
	g, err := graph.Build(graph.Family(*family), *n, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# %s: n=%d m=%d D=%d\n", *family, g.N(), g.M(), g.Diameter())
	for _, k := range kList {
		q, err := nq.Of(g, k)
		if err != nil {
			return err
		}
		witness, qv, err := nq.Witness(g, k)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "NQ_%-6d = %4d   (witness node %d with NQ_k(v)=%d)\n", k, q, witness, qv)
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}
