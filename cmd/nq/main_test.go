package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cliutil"
)

func TestRunSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "64", "-k", "16,64"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "NQ_k scaling") || !strings.Contains(out, "grid3d") {
		t.Fatalf("sweep output:\n%s", out)
	}
}

func TestRunSingleFamily(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "64", "-k", "16", "-family", "path"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "witness node") {
		t.Fatalf("family output:\n%s", buf.String())
	}
}

func TestRunBadK(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-k", "16,oops"}, &buf); err == nil {
		t.Fatal("bad k list accepted")
	}
}

// TestUsageShape pins the shared cliutil -h format every binary emits:
// the validator fails on any undocumented flag or a missing Examples
// block.
func TestUsageShape(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-h"}, &buf); err != nil {
		t.Fatalf("-h returned %v", err)
	}
	if err := cliutil.VerifyUsageText("nq", buf.String()); err != nil {
		t.Errorf("usage text invalid: %v\n%s", err, buf.String())
	}
}
