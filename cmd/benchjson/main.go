// Command benchjson renders `go test -bench` output as JSONL through the
// experiment harness's runner.JSONLSink, so benchmark results land in the
// same log-structured format as the sweep artifacts. With -baseline it
// joins a second measurement (either raw bench text or a previously
// emitted JSONL file) onto the current one and reports the speedup, which
// is how the committed BENCH_core.json perf record is produced:
//
//	go test -run '^$' -bench BenchmarkCore -count=3 . > bench.txt
//	benchjson -baseline BENCH_core.json -current bench.txt > BENCH_core_run.json
//
// With -count > 1 the median ns/op (and its allocs/op) per benchmark is
// reported. Output rows are sorted by benchmark name, so the document is
// deterministic for a fixed pair of inputs.
//
// With -verify the command flips from producer to linter: each
// argument names a benchjson JSONL record, and every non-empty speedup
// field must be at least -floor (default 1.0). CI runs it over the
// committed BENCH_*.json files, so a record that no longer describes
// an optimization — a regenerated baseline whose win has slipped below
// break-even, or a join that lost its speedup column — fails the
// build. (Runtime drift is surfaced separately: the bench job uploads
// freshly rendered BENCH_*_run.json artifacts whose speedup column
// compares the committed numbers against this run, deliberately
// ungated because single-iteration CI runs are noisy.)
//
//	benchjson -verify BENCH_core.json BENCH_sweep.json BENCH_nq.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"

	"repro/internal/cliutil"
	"repro/internal/runner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := cliutil.NewFlagSet(w, "benchjson",
		"Render `go test -bench` output as JSONL through the runner sink, optionally joined against a baseline.",
		"go test -run '^$' -bench BenchmarkCore . | benchjson",
		"benchjson -baseline BENCH_core.json -current bench.txt > BENCH_core_run.json",
		"benchjson -verify BENCH_core.json BENCH_sweep.json BENCH_nq.json",
	)
	baselinePath := fs.String("baseline", "", "baseline measurement (bench text or benchjson JSONL); optional")
	currentPath := fs.String("current", "", "current measurement (bench text); default stdin")
	table := fs.String("table", "bench_core", "table name stamped on every output row (e.g. bench_sweep)")
	verify := fs.Bool("verify", false, "verify committed JSONL records (the positional args) instead of producing one")
	floor := fs.Float64("floor", 1.0, "minimum speedup every verified record row must hold (with -verify)")
	if err := fs.Parse(args); err != nil {
		if cliutil.HelpRequested(err) {
			return nil
		}
		return err
	}
	if *verify {
		return verifyRecords(w, fs.Args(), *floor)
	}

	var cur []byte
	var err error
	if *currentPath == "" {
		cur, err = io.ReadAll(os.Stdin)
	} else {
		cur, err = os.ReadFile(*currentPath)
	}
	if err != nil {
		return err
	}
	current, err := parse(cur)
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("no benchmark lines in current input")
	}

	baseline := map[string]measurement{}
	if *baselinePath != "" {
		base, err := os.ReadFile(*baselinePath)
		if err != nil {
			return err
		}
		baseline, err = parse(base)
		if err != nil {
			return err
		}
	}
	return write(w, *table, baseline, current)
}

// measurement is one benchmark's aggregated result.
type measurement struct {
	NsOp     float64
	AllocsOp int64
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+[0-9.]+ B/op\s+(\d+) allocs/op)?`)

// parse extracts per-benchmark measurements from `go test -bench` text or
// from benchjson's own JSONL output (treated as a baseline: the
// current_* fields of each row are read back). Repeated bench lines
// (-count > 1) aggregate to the median ns/op.
func parse(data []byte) (map[string]measurement, error) {
	if looksLikeJSONL(data) {
		return parseJSONL(data)
	}
	samples := make(map[string][]measurement)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
		}
		var allocs int64
		if m[3] != "" {
			allocs, err = strconv.ParseInt(m[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %v", sc.Text(), err)
			}
		}
		samples[m[1]] = append(samples[m[1]], measurement{NsOp: ns, AllocsOp: allocs})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]measurement, len(samples))
	for name, ss := range samples {
		sort.Slice(ss, func(a, b int) bool { return ss[a].NsOp < ss[b].NsOp })
		out[name] = ss[len(ss)/2]
	}
	return out, nil
}

func looksLikeJSONL(data []byte) bool {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	return len(trimmed) > 0 && trimmed[0] == '{'
}

func parseJSONL(data []byte) (map[string]measurement, error) {
	out := make(map[string]measurement)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var row map[string]string
		if err := json.Unmarshal(line, &row); err != nil {
			return nil, fmt.Errorf("bad JSONL baseline line %q: %v", line, err)
		}
		name := row["benchmark"]
		if name == "" {
			continue
		}
		ns, err := strconv.ParseFloat(row["current_ns_op"], 64)
		if err != nil {
			continue
		}
		allocs, _ := strconv.ParseInt(row["current_allocs_op"], 10, 64)
		out[name] = measurement{NsOp: ns, AllocsOp: allocs}
	}
	return out, sc.Err()
}

// write renders the joined measurements through the runner's JSONL sink.
func write(w io.Writer, table string, baseline, current map[string]measurement) error {
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	t := &runner.Table{
		Name: table,
		Keys: []string{"benchmark", "baseline_ns_op", "baseline_allocs_op", "current_ns_op", "current_allocs_op", "speedup"},
	}
	for _, name := range names {
		cur := current[name]
		baseNs, baseAllocs, speedup := "", "", ""
		if base, ok := baseline[name]; ok {
			baseNs = formatNs(base.NsOp)
			baseAllocs = strconv.FormatInt(base.AllocsOp, 10)
			if cur.NsOp > 0 {
				speedup = strconv.FormatFloat(base.NsOp/cur.NsOp, 'f', 2, 64)
			}
		}
		t.Rows = append(t.Rows, []string{
			name, baseNs, baseAllocs, formatNs(cur.NsOp), strconv.FormatInt(cur.AllocsOp, 10), speedup,
		})
	}
	sink := runner.NewJSONLSink(w)
	return runner.WriteTable(sink, t)
}

func formatNs(ns float64) string { return strconv.FormatFloat(ns, 'f', 1, 64) }

// verifyRecords is the CI regression gate: every non-empty speedup
// field of every named benchjson JSONL record must be ≥ floor, so a
// committed perf artifact whose optimization has slipped below
// break-even fails loudly instead of rotting.
func verifyRecords(w io.Writer, paths []string, floor float64) error {
	if len(paths) == 0 {
		return fmt.Errorf("-verify needs at least one JSONL record argument")
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rows, checked := 0, 0
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 1024*1024), 1024*1024)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var row map[string]string
			if err := json.Unmarshal(line, &row); err != nil {
				return fmt.Errorf("%s: bad JSONL line %q: %v", path, line, err)
			}
			name := row["benchmark"]
			if name == "" {
				continue
			}
			rows++
			sp := row["speedup"]
			if sp == "" {
				continue
			}
			v, err := strconv.ParseFloat(sp, 64)
			if err != nil {
				return fmt.Errorf("%s: %s: bad speedup %q: %v", path, name, sp, err)
			}
			checked++
			if v < floor {
				return fmt.Errorf("%s: %s: speedup %.2f below floor %.2f", path, name, v, floor)
			}
		}
		if err := sc.Err(); err != nil {
			return err
		}
		if rows == 0 {
			return fmt.Errorf("%s: no benchmark rows", path)
		}
		if checked == 0 {
			// A committed record with only empty speedups (e.g. joined
			// without -baseline) records no optimization — gating on it
			// would pass vacuously forever.
			return fmt.Errorf("%s: %d rows but no speedup fields to verify", path, rows)
		}
		fmt.Fprintf(w, "%s: %d rows, %d speedups ≥ %.2f\n", path, rows, checked, floor)
	}
	return nil
}
