package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cliutil"
)

const benchText = `goos: linux
pkg: repro
BenchmarkCoreRoundLoop        	  381388	      9000 ns/op	   16745 B/op	       2 allocs/op
BenchmarkCoreRoundLoop        	  400000	      8000 ns/op	   16700 B/op	       2 allocs/op
BenchmarkCoreRoundLoop        	  390000	      8500 ns/op	   16720 B/op	       2 allocs/op
BenchmarkCoreBFS-8            	  260613	      8567 ns/op	   12288 B/op	       2 allocs/op
PASS
`

const currentText = `BenchmarkCoreRoundLoop	 7000000	      300.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkCoreBFS	  260613	      8567 ns/op	   12288 B/op	       2 allocs/op
BenchmarkCoreNew	  100	      42.0 ns/op	       0 B/op	       0 allocs/op
`

func TestBenchjsonJoinsBaseline(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.txt")
	cur := filepath.Join(dir, "cur.txt")
	if err := os.WriteFile(base, []byte(benchText), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cur, []byte(currentText), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d rows, want 3:\n%s", len(lines), out)
	}
	// Rows are sorted by benchmark name: BFS, New, RoundLoop.
	// Median of {8000, 8500, 9000} is 8500; speedup 8500/300 = 28.33.
	if !strings.Contains(lines[2], `"benchmark":"BenchmarkCoreRoundLoop"`) ||
		!strings.Contains(lines[2], `"baseline_ns_op":"8500.0"`) ||
		!strings.Contains(lines[2], `"speedup":"28.33"`) {
		t.Fatalf("round-loop row wrong: %s", lines[2])
	}
	// The -8 GOMAXPROCS suffix is stripped.
	if !strings.Contains(lines[0], `"benchmark":"BenchmarkCoreBFS"`) ||
		!strings.Contains(lines[0], `"speedup":"1.00"`) {
		t.Fatalf("bfs row wrong: %s", lines[0])
	}
	// A benchmark absent from the baseline reports empty baseline fields.
	if !strings.Contains(lines[1], `"benchmark":"BenchmarkCoreNew"`) ||
		!strings.Contains(lines[1], `"baseline_ns_op":""`) ||
		!strings.Contains(lines[1], `"speedup":""`) {
		t.Fatalf("new-benchmark row wrong: %s", lines[1])
	}

	// The emitted JSONL must itself parse as a baseline (round-trip).
	prev := filepath.Join(dir, "prev.jsonl")
	if err := os.WriteFile(prev, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := run([]string{"-baseline", prev, "-current", cur}, &buf2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), `"speedup":"1.00"`) {
		t.Fatalf("round-trip baseline lost measurements:\n%s", buf2.String())
	}
}

func TestBenchjsonErrorsOnEmptyInput(t *testing.T) {
	dir := t.TempDir()
	cur := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(cur, []byte("no benchmarks here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-current", cur}, &bytes.Buffer{}); err == nil {
		t.Fatal("expected error on input without bench lines")
	}
}

// TestBenchjsonVerify pins the CI regression gate: committed records
// pass at the default floor, a row below the floor fails and names the
// offending benchmark, and empty speedups (no baseline) are ignored.
func TestBenchjsonVerify(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	os.WriteFile(good, []byte(
		`{"table":"bench_core","benchmark":"BenchmarkA","speedup":"28.33"}`+"\n"+
			`{"table":"bench_core","benchmark":"BenchmarkB","speedup":"1.00"}`+"\n"+
			`{"table":"bench_core","benchmark":"BenchmarkC","speedup":""}`+"\n"), 0o644)
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(
		`{"table":"bench_core","benchmark":"BenchmarkA","speedup":"0.83"}`+"\n"), 0o644)

	var buf bytes.Buffer
	if err := run([]string{"-verify", good}, &buf); err != nil {
		t.Fatalf("good record failed verification: %v", err)
	}
	if !strings.Contains(buf.String(), "3 rows, 2 speedups") {
		t.Fatalf("summary wrong: %s", buf.String())
	}
	err := run([]string{"-verify", good, bad}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "BenchmarkA") || !strings.Contains(err.Error(), "0.83") {
		t.Fatalf("regressed record not flagged: %v", err)
	}
	// A custom floor flags rows the default would pass.
	if err := run([]string{"-verify", "-floor", "2.0", good}, &bytes.Buffer{}); err == nil {
		t.Fatal("floor 2.0 accepted a 1.00 speedup")
	}
	if err := run([]string{"-verify"}, &bytes.Buffer{}); err == nil {
		t.Fatal("verify without files accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, nil, 0o644)
	if err := run([]string{"-verify", empty}, &bytes.Buffer{}); err == nil {
		t.Fatal("empty record accepted")
	}
	// A record whose rows all lack speedups (e.g. joined without
	// -baseline) must fail rather than pass vacuously.
	noSpeedups := filepath.Join(dir, "nospeedups.json")
	os.WriteFile(noSpeedups, []byte(
		`{"table":"bench_core","benchmark":"BenchmarkA","speedup":""}`+"\n"), 0o644)
	if err := run([]string{"-verify", noSpeedups}, &bytes.Buffer{}); err == nil {
		t.Fatal("record without speedup fields accepted")
	}
}

// TestUsageShape pins the shared cliutil -h format every binary emits:
// the validator fails on any undocumented flag or a missing Examples
// block.
func TestUsageShape(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-h"}, &buf); err != nil {
		t.Fatalf("-h returned %v", err)
	}
	if err := cliutil.VerifyUsageText("benchjson", buf.String()); err != nil {
		t.Errorf("usage text invalid: %v\n%s", err, buf.String())
	}
}
