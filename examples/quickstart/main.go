// Quickstart: build a HYBRID network on a 2-d grid, broadcast k messages
// with the universally optimal Theorem 1 algorithm, and compare the
// measured round count with the prior existential eÕ(√k) bound and the
// eΩ(NQ_k) lower bound.
//
// Run:  go run ./examples/quickstart
package main

import (
	"fmt"
	"math"
	"os"

	"repro/hybridnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const side = 24 // 576-node grid
	g := hybridnet.Grid2D(side)
	net, err := hybridnet.NewNetwork(g, hybridnet.Config{Variant: hybridnet.HYBRID0})
	if err != nil {
		return err
	}
	n := net.N()
	k := n // broadcast one token per node (a BCC round, Corollary 2.1)

	fmt.Printf("local graph: %d×%d grid (n=%d, m=%d, D=%d)\n", side, side, n, g.M(), g.Diameter())
	fmt.Printf("global capacity: γ=%d messages/node/round\n\n", net.Cap())

	// The parameter that governs everything: NQ_k (Definition 3.1).
	q, err := hybridnet.NQ(g, k)
	if err != nil {
		return err
	}
	fmt.Printf("NQ_%d = %d  (Theorem 16 predicts Θ(k^(1/3)) = %.1f on 2-d grids)\n\n",
		k, q, math.Cbrt(float64(k)))

	// All k tokens start at one corner — Theorem 1 is independent of the
	// initial distribution.
	tokens := make([]int, n)
	tokens[0] = k
	res, err := net.Disseminate(tokens)
	if err != nil {
		return err
	}
	fmt.Printf("Theorem 1 k-dissemination: %d rounds (NQ_k=%d, %d clusters)\n",
		res.Rounds, res.NQ, res.Clusters)

	lb, err := hybridnet.DisseminationLowerBound(g, k, net.Cap(), 0.9)
	if err != nil {
		return err
	}
	fmt.Printf("Theorem 4 lower bound:     %.1f rounds (no algorithm can beat eΩ(NQ_k))\n", lb.Rounds)
	fmt.Printf("existential eÕ(√k):        %.1f·polylog rounds [AHK+20]\n\n", math.Sqrt(float64(k)))

	fmt.Println("round audit:")
	fmt.Print(net.Audit())
	return nil
}
