// Edge computing on a sensor mesh: the paper highlights (Section 1.1)
// that NQ_k "dictates how effectively nodes can locally collaborate to
// solve a global distributed problem with workload k" — the edge-
// computing paradigm. Here a city-scale sensor mesh (2-d grid: WiFi
// links) with a cellular uplink (global mode) aggregates k sensor
// channels (Theorem 2) and then routes per-district reports to a handful
// of gateway nodes ((k,ℓ)-routing, Theorem 3).
//
// Run:  go run ./examples/edgecompute
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/hybridnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "edgecompute:", err)
		os.Exit(1)
	}
}

func run() error {
	const side = 20 // 400 sensors
	g := hybridnet.Grid2D(side)
	net, err := hybridnet.NewNetwork(g, hybridnet.Config{})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(7))
	n := net.N()
	fmt.Printf("sensor mesh: %d×%d grid, γ=%d uplink messages/round\n\n", side, side, net.Cap())

	// Phase 1: aggregate k sensor channels (min over the mesh).
	k := n
	values := make([][]int64, n)
	for v := range values {
		row := make([]int64, k)
		for i := range row {
			row[i] = int64(1000 + (v^i)%512)
		}
		values[v] = row
	}
	minF := func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}
	_, ares, err := net.Aggregate(k, values, minF)
	if err != nil {
		return err
	}
	fmt.Printf("Theorem 2: aggregated %d channels in %d rounds (NQ_k=%d)\n", k, ares.Rounds, ares.NQ)

	// Phase 2: every sensor ships an individual report to each of ℓ
	// gateways — a (k,ℓ)-routing instance with arbitrary sources and
	// randomly placed gateways (Theorem 3 case 1).
	net.ResetRounds()
	l := 3
	sources := make([]int, n)
	for i := range sources {
		sources[i] = i
	}
	gateways := hybridnet.SampleNodes(n, float64(l)/float64(n), rng)
	if len(gateways) == 0 {
		gateways = []int{n / 2}
	}
	rres, err := net.Route(hybridnet.RoutingSpec{
		Case:    hybridnet.ArbitrarySourcesRandomTargets,
		Sources: sources,
		Targets: gateways,
		K:       n,
		L:       l,
	}, rng)
	if err != nil {
		return err
	}
	fmt.Printf("Theorem 3: routed %d reports to %d gateways in %d rounds (max relay load %d)\n",
		rres.Pairs, len(gateways), rres.Rounds, rres.MaxIntermediateLoad)
	fmt.Printf("           broadcasting all %d reports instead would be eÕ(NQ_kℓ) ≫ eÕ(NQ_k)\n\n", rres.Pairs)

	fmt.Println("round audit:")
	fmt.Print(net.Audit())
	return nil
}
