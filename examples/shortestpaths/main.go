// Shortest paths across the HYBRID toolbox: runs SSSP (Theorem 13),
// k-SSP (Theorem 14), and three APSP algorithms (Theorems 6–8) on a
// weighted grid, verifying the stretch guarantees against exact Dijkstra
// and printing the measured rounds next to the eÕ(√n) existential bound
// the paper improves on.
//
// Run:  go run ./examples/shortestpaths
package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"

	"repro/hybridnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "shortestpaths:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(42))
	g := hybridnet.RandomWeights(hybridnet.Grid2D(16), 50, rng) // weighted 256-node grid
	n := g.N()
	sqrtN := math.Sqrt(float64(n))

	// Theorem 13: (1+ε)-SSSP in eÕ(1/ε²) rounds.
	net, err := hybridnet.NewNetwork(g, hybridnet.Config{Variant: hybridnet.HYBRID0})
	if err != nil {
		return err
	}
	eps := 0.25
	est, err := net.SSSP(0, eps)
	if err != nil {
		return err
	}
	exact := g.Dijkstra(0)
	worst := 1.0
	for v := range est {
		if exact[v] > 0 {
			if r := float64(est[v]) / float64(exact[v]); r > worst {
				worst = r
			}
		}
	}
	fmt.Printf("Theorem 13 SSSP (ε=%.2f): %d rounds, measured stretch ≤ %.3f (guarantee %.2f)\n",
		eps, net.Rounds(), worst, 1+eps)
	fmt.Printf("  prior best: eÕ(n^(5/17)) = %.0f·polylog [CHLP21], eÕ(√n) = %.0f·polylog [AG21]\n\n",
		math.Pow(float64(n), 5.0/17.0), sqrtN)

	// Theorem 14: k-SSP from random sources.
	net.ResetRounds()
	k := 24
	sources := hybridnet.SampleNodes(n, float64(k)/float64(n), rng)
	dist, kres, err := net.KSSP(sources, 0.5, true, rng)
	if err != nil {
		return err
	}
	fmt.Printf("Theorem 14 k-SSP (k=%d, regime %q): %d rounds, stretch ≤ %.2f\n",
		len(sources), kres.Regime, kres.Rounds, kres.Stretch)
	fmt.Printf("  skeleton: %d nodes, h=%d hops; exact-vs-estimate check on source 0: ", kres.SkeletonSize, kres.H)
	d0 := g.Dijkstra(sources[0])
	ok := true
	for v := range d0 {
		if dist[0][v] < d0[v] || float64(dist[0][v]) > kres.Stretch*float64(d0[v])+1e-6 {
			ok = false
			break
		}
	}
	fmt.Printf("%v\n\n", ok)

	// APSP family.
	for _, algo := range []struct {
		name string
		run  func(*hybridnet.Network) (*hybridnet.APSPResult, error)
	}{
		{"Theorem 6 unweighted (1+ε)", func(nw *hybridnet.Network) (*hybridnet.APSPResult, error) {
			_, r, err := nw.UnweightedAPSP(0.5, false)
			return r, err
		}},
		{"Corollary 2.2 sparse exact", func(nw *hybridnet.Network) (*hybridnet.APSPResult, error) {
			_, r, err := nw.SparseAPSP(false)
			return r, err
		}},
		{"Theorem 7 spanner (stretch 1+ε·log n)", func(nw *hybridnet.Network) (*hybridnet.APSPResult, error) {
			_, r, err := nw.SpannerAPSP(0.5, false)
			return r, err
		}},
		{"Theorem 8 skeleton (stretch 3)", func(nw *hybridnet.Network) (*hybridnet.APSPResult, error) {
			_, r, err := nw.SkeletonAPSP(1, rng, false)
			return r, err
		}},
	} {
		nw, err := hybridnet.NewNetwork(g, hybridnet.Config{})
		if err != nil {
			return err
		}
		res, err := algo.run(nw)
		if err != nil {
			return err
		}
		fmt.Printf("%-42s %6d rounds (NQ_n=%d, payload %d tokens, stretch %.2f)\n",
			algo.name+":", res.Rounds, res.NQ, res.PayloadTokens, res.Stretch)
	}
	fmt.Printf("%-42s %6.0f·polylog rounds\n", "existential eΘ(√n) APSP [KS20]:", sqrtN)
	return nil
}
