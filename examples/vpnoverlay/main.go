// VPN overlay routing: organizations augment campus networks with
// internet tunnels (the paper's VPN motivation, Section 1). The campus
// is a long haul of sites (a lollipop: a dense headquarters clique plus
// a chain of branch offices); the VPN is the global mode. The example
// runs the (k,ℓ)-SP pipeline (Theorem 5) so that ℓ monitoring stations
// learn their latency to k servers, then approximates all cut sizes
// (Theorem 9) to find the bottleneck capacity between the two halves of
// the chain.
//
// Run:  go run ./examples/vpnoverlay
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/hybridnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vpnoverlay:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(11))
	g := hybridnet.RandomWeights(hybridnet.Lollipop(16, 240), 20, rng)
	n := g.N()
	net, err := hybridnet.NewNetwork(g, hybridnet.Config{})
	if err != nil {
		return err
	}
	fmt.Printf("campus: %d sites (16-clique HQ + 240-site chain), D=%d, γ=%d\n\n",
		n, g.Diameter(), net.Cap())

	// Theorem 5: k servers (the HQ clique) to ℓ random monitors.
	k := 16
	servers := make([]int, k)
	for i := range servers {
		servers[i] = i
	}
	monitors := hybridnet.SampleNodes(n, 3.0/float64(n), rng)
	if len(monitors) == 0 {
		monitors = []int{n - 1}
	}
	dist, res, err := net.KLSP(servers, monitors, 0.25, hybridnet.KLSPArbitrarySources, rng)
	if err != nil {
		return err
	}
	fmt.Printf("Theorem 5 (k=%d servers, ℓ=%d monitors): %d rounds, stretch ≤ %.2f\n",
		k, len(monitors), res.Rounds, res.Stretch)
	for ti, m := range monitors {
		exact := g.Dijkstra(m)
		var worst float64 = 1
		for si, s := range servers {
			if exact[s] > 0 {
				if r := float64(dist[ti][si]) / float64(exact[s]); r > worst {
					worst = r
				}
			}
		}
		fmt.Printf("  monitor %4d: latency to nearest server %d, measured stretch ≤ %.3f\n",
			m, dist[ti][0], worst)
	}

	// Theorem 9: every site learns a (1+ε) sketch of all cut sizes.
	net.ResetRounds()
	sp, cres, err := net.ApproxCuts(0.5, rng)
	if err != nil {
		return err
	}
	side := make([]bool, n)
	for v := 0; v < n/2; v++ {
		side[v] = true
	}
	fmt.Printf("\nTheorem 9 cut sketch: %d rounds, %d sparsifier edges\n", cres.Rounds, cres.SparsifierEdges)
	fmt.Printf("  estimated capacity across the mid-chain cut: %.0f\n", sp.CutValue(side))
	return nil
}
