// Datacenter failure notification: the paper's Section 1 motivation for
// information dissemination. A datacenter is modeled as a ring of racks
// (cliques of machines wired together, adjacent racks joined by uplinks —
// the ring-of-cliques family) plus a low-bandwidth management network
// (the global mode). A failing rack must announce a batch of k control
// messages (failure notices, policy changes) to every machine.
//
// The example contrasts three strategies: the trivial LOCAL flood (D
// rounds), the global-mode-only pipeline (k/γ rounds), and the universal
// Theorem 1 algorithm (eÕ(NQ_k)), and prints the winner.
//
// Run:  go run ./examples/datacenter
package main

import (
	"fmt"
	"os"

	"repro/hybridnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datacenter:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		racks       = 32
		machines    = 16 // per rack
		kControlMsg = 2048
	)
	g := hybridnet.RingOfCliques(racks, machines)
	net, err := hybridnet.NewNetwork(g, hybridnet.Config{})
	if err != nil {
		return err
	}
	n := net.N()
	fmt.Printf("datacenter: %d racks × %d machines = %d nodes, D=%d, γ=%d\n\n",
		racks, machines, n, g.Diameter(), net.Cap())

	// All k control messages originate in rack 0 (the failing rack).
	tokens := make([]int, n)
	perMachine := kControlMsg / machines
	for m := 0; m < machines; m++ {
		tokens[m] = perMachine
	}

	res, err := net.Disseminate(tokens)
	if err != nil {
		return err
	}
	q := res.NQ
	fmt.Printf("strategy comparison for k=%d control messages:\n", kControlMsg)
	fmt.Printf("  LOCAL flooding only:        %6d rounds (diameter-bound)\n", g.Diameter())
	fmt.Printf("  global NCC pipeline floor:  %6d rounds (k/γ receive bound)\n", kControlMsg/net.Cap())
	fmt.Printf("  Theorem 1 (universal):      %6d rounds  ← NQ_k = %d\n\n", res.Rounds, q)

	// The same infrastructure answers distributed queries: aggregate the
	// per-machine load vector (k values) across the datacenter.
	net.ResetRounds()
	kAgg := 256
	values := make([][]int64, n)
	for v := range values {
		row := make([]int64, kAgg)
		for i := range row {
			row[i] = int64((v*31 + i) % 97) // synthetic load metrics
		}
		values[v] = row
	}
	maxF := func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	agg, ares, err := net.Aggregate(kAgg, values, maxF)
	if err != nil {
		return err
	}
	fmt.Printf("Theorem 2 aggregation of %d load metrics: %d rounds (max metric = %d)\n",
		kAgg, ares.Rounds, agg[0])
	return nil
}
