// Marginal models of HYBRID(λ, γ): Section 1.3 of the paper observes
// that the classical models are special cases —
//
//	Congested Clique ≈ HYBRID(0, O(n log n))     LOCAL   = HYBRID₀(∞, 0)
//	NCC              ≈ HYBRID(0, O(log² n))      CONGEST = HYBRID₀(O(log n), 0)
//
// This example solves unweighted SSSP on the same long weighted path in
// three models: a genuinely distributed CONGEST Bellman–Ford (every
// message crosses an edge under the one-word cap), the LOCAL flood, and
// the HYBRID Theorem 13 algorithm — showing why adding a thin global
// mode to a local network changes the game from Θ(D) to polylog rounds.
//
// Run:  go run ./examples/models
package main

import (
	"fmt"
	"os"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/hybrid"
	"repro/internal/sssp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "models:", err)
		os.Exit(1)
	}
}

func run() error {
	g := graph.Path(4096)
	fmt.Printf("topology: %d-node path (D=%d)\n\n", g.N(), g.Diameter())

	// CONGEST = HYBRID₀(O(log n), 0): distributed Bellman–Ford, engine-
	// enforced one word per edge per round.
	cnet, err := hybrid.NewCONGEST(g, 1)
	if err != nil {
		return err
	}
	dist, rounds, err := congest.BellmanFord(cnet, 0)
	if err != nil {
		return err
	}
	fmt.Printf("CONGEST  (λ=1 word/edge, no global): %5d rounds   d(0,%d)=%d\n",
		rounds, g.N()-1, dist[g.N()-1])

	// LOCAL = HYBRID₀(∞, 0): unbounded local bandwidth still needs D rounds.
	lnet, err := hybrid.NewLOCAL(g, 1)
	if err != nil {
		return err
	}
	ldist, lrounds, err := congest.BFS(lnet, 0)
	if err != nil {
		return err
	}
	fmt.Printf("LOCAL    (λ=∞, no global):           %5d rounds   hop(0,%d)=%d\n",
		lrounds, g.N()-1, ldist[g.N()-1])

	// Full HYBRID: Theorem 13 runs in eÕ(1/ε²) rounds regardless of D.
	hnet, err := hybrid.New(g, hybrid.Config{Variant: hybrid.VariantHybrid0})
	if err != nil {
		return err
	}
	est, err := sssp.Approx(hnet, 0, 0.5)
	if err != nil {
		return err
	}
	fmt.Printf("HYBRID   (λ=∞, γ=%d): Theorem 13     %5d rounds   ed(0,%d)=%d (stretch ≤ 1.5)\n",
		hnet.Cap(), hnet.Rounds(), g.N()-1, est[g.N()-1])

	// NCC-only (no local mode) must pay for volume through γ.
	nnet, err := hybrid.NewNCC(g, 1)
	if err != nil {
		return err
	}
	fmt.Printf("NCC      (no local, γ=%d):           capacity floor for n-token broadcast: %d rounds\n",
		nnet.Cap(), g.N()/nnet.Cap())

	fmt.Println("\nthe HYBRID advantage: local bandwidth handles volume, the global mode")
	fmt.Println("handles distance — neither marginal model has both (Section 1.3).")
	return nil
}
