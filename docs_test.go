package repro_test

// The documentation gates of the CI docs job.
//
// TestDocsPackageComments enforces the "go doc as a map of the paper"
// invariant: every package (internal/*, hybridnet, cmd/*) must carry a
// package-level doc comment, and every library package's comment must
// anchor itself to the reproduction — a paper reference (Theorem,
// Lemma, Section, Definition, …) or a DESIGN.md pointer.
//
// TestDocsMarkdownLinks keeps the top-level markdown honest: every
// relative link must resolve to a file or directory in the repository.

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// packageDirs lists every directory that must carry a documented Go
// package.
func packageDirs(t *testing.T) []string {
	t.Helper()
	dirs := []string{"hybridnet"}
	for _, glob := range []string{"internal/*", "cmd/*"} {
		matches, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range matches {
			if st, err := os.Stat(m); err == nil && st.IsDir() {
				dirs = append(dirs, m)
			}
		}
	}
	return dirs
}

// packageDoc returns the package doc comment of the (non-test) package
// in dir, joined across files if several carry one.
func packageDoc(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var docs []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatalf("parsing %s/%s: %v", dir, name, err)
		}
		if f.Doc != nil {
			docs = append(docs, f.Doc.Text())
		}
	}
	return strings.Join(docs, "\n")
}

// paperAnchor matches the references a library package's doc comment
// must carry to serve as a map of the paper.
var paperAnchor = regexp.MustCompile(
	`Theorem|Lemma|Section|Definition|Corollary|Algorithm|Appendix|DESIGN\.md|PODC|HYBRID|paper`)

func TestDocsPackageComments(t *testing.T) {
	for _, dir := range packageDirs(t) {
		doc := packageDoc(t, dir)
		if strings.TrimSpace(doc) == "" {
			t.Errorf("%s: missing package doc comment (add one to the main file or a doc.go)", dir)
			continue
		}
		if len(strings.TrimSpace(doc)) < 60 {
			t.Errorf("%s: package doc comment is too thin to document anything:\n%s", dir, doc)
		}
		// cmd/* binaries document usage; the anchor requirement applies
		// to the library packages that reproduce the paper.
		if strings.HasPrefix(dir, "cmd/") {
			continue
		}
		if !paperAnchor.MatchString(doc) {
			t.Errorf("%s: package doc comment cites no paper section/lemma or DESIGN.md anchor:\n%s", dir, doc)
		}
	}
}

// markdownLink matches [text](target) links, excluding images.
var markdownLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func TestDocsMarkdownLinks(t *testing.T) {
	files, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files at the repository root")
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range markdownLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue // external links and intra-document anchors
			}
			target = strings.SplitN(target, "#", 2)[0]
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (%v)", file, m[1], err)
			}
		}
	}
}
